"""The sharded solver: partitioning, worker pool, reconciliation.

Three layers, tested bottom-up:

- :mod:`repro.des.partition` — the multilevel min-cut pass must separate
  clustered graphs along their thin bridges, respect the capacity
  balance ceiling, and be deterministic (shard layouts feed a solver
  whose results must reproduce run to run);
- :mod:`repro.des.shards` — knob resolution (strict ``REPRO_SHARDS``,
  ``REPRO_PARALLEL``-style ``REPRO_SHARD_WORKERS`` with the
  ``os.cpu_count()`` cap) and the persistent fork/shared-memory worker
  pool, which must be *bit-identical* to in-process solving — it is a
  throughput knob, never a results knob;
- ``FlowNetwork(solver="sharded")`` — the contract from ISSUE/README:
  bit-identical to ``component`` at ``fairness_slack=0`` or ``shards=1``,
  per-flow deviation bounded by the slack otherwise, every decline path
  (heavy cut, reconciliation over budget) falling back to the exact
  solve, plus the shard counters in ``solver_stats``, the trace stream
  and ``tracereport``. A randomized storm suite crosses the sharded
  solver with both kernels and both event schedulers.
"""

import math
import os

import numpy as np
import pytest

import repro.des.bandwidth as bw
from repro.des import FlowNetwork, Simulator
from repro.des.bandwidth import SOLVER_COMPONENT, SOLVER_GLOBAL, SOLVER_SHARDED
from repro.des.kernels import kernel_status
from repro.des.partition import PartitionResult, cut_weight, partition_graph
from repro.des.shards import (DEFAULT_SHARDS, ShardProblem, ShardWorkerPool,
                              resolve_shard_workers, resolve_shards,
                              solve_problem)
from repro.errors import SimulationError

KERNELS = ["python",
           pytest.param("compiled", marks=pytest.mark.skipif(
               kernel_status() == "unavailable",
               reason="no C compiler and no numba"))]


# ---------------------------------------------------------------------- #
# partition_graph
# ---------------------------------------------------------------------- #
def _clustered_graph(nclusters, size, intra_w=10.0, bridge_w=0.1):
    """``nclusters`` cliques of ``size`` nodes chained by thin bridges."""
    n = nclusters * size
    node_w = np.ones(n)
    eu, ev, ew = [], [], []
    for c in range(nclusters):
        base = c * size
        for i in range(size):
            for j in range(i + 1, size):
                eu.append(base + i)
                ev.append(base + j)
                ew.append(intra_w)
        if c + 1 < nclusters:
            eu.append(base + size - 1)
            ev.append(base + size)
            ew.append(bridge_w)
    return (node_w, np.array(eu), np.array(ev), np.array(ew))


def test_partition_separates_two_clusters():
    node_w, eu, ev, ew = _clustered_graph(2, 8)
    result = partition_graph(node_w, eu, ev, ew, k=2)
    assert isinstance(result, PartitionResult)
    # The only optimal 2-cut severs the single thin bridge.
    assert result.cut_weight == pytest.approx(0.1)
    assert result.imbalance == pytest.approx(1.0)
    left = set(result.labels[:8].tolist())
    right = set(result.labels[8:].tolist())
    assert len(left) == len(right) == 1 and left != right


def test_partition_chain_of_clusters():
    node_w, eu, ev, ew = _clustered_graph(4, 8)
    result = partition_graph(node_w, eu, ev, ew, k=4)
    # Each cluster must land whole in its own part: 3 bridges cut.
    assert result.cut_weight == pytest.approx(0.3)
    assert result.imbalance == pytest.approx(1.0)
    for c in range(4):
        assert len(set(result.labels[c * 8:(c + 1) * 8].tolist())) == 1


def test_partition_deterministic():
    rng = np.random.default_rng(42)
    n = 60
    node_w = rng.uniform(1.0, 5.0, size=n)
    eu = rng.integers(0, n, size=300)
    ev = rng.integers(0, n, size=300)
    ew = rng.uniform(0.1, 3.0, size=300)
    first = partition_graph(node_w, eu, ev, ew, k=4)
    second = partition_graph(node_w.copy(), eu.copy(), ev.copy(),
                             ew.copy(), k=4)
    assert np.array_equal(first.labels, second.labels)
    assert first.cut_weight == second.cut_weight


@pytest.mark.parametrize("seed", range(6))
def test_partition_respects_balance_ceiling(seed):
    rng = np.random.default_rng(100 + seed)
    n = 48
    node_w = rng.uniform(1.0, 2.0, size=n)
    eu = rng.integers(0, n, size=200)
    ev = rng.integers(0, n, size=200)
    ew = rng.uniform(0.1, 1.0, size=200)
    k = 4
    tol = 0.25
    result = partition_graph(node_w, eu, ev, ew, k=k, balance_tol=tol)
    part_w = np.bincount(result.labels, weights=node_w, minlength=k)
    ceiling = node_w.sum() / k * (1.0 + tol)
    # The greedy fallback can overshoot only when *no* part has room,
    # which one overweight node at a time cannot cause here.
    assert part_w.max() <= ceiling + node_w.max()
    # Same cut, summed over aggregated vs raw parallel edges (FP order).
    assert result.cut_weight == pytest.approx(
        cut_weight(result.labels, eu, ev, ew), rel=1e-12)


def test_partition_degenerate_cases():
    # k=1: everything in part 0, cut 0.
    one = partition_graph(np.ones(5), np.array([0]), np.array([1]),
                          np.array([2.0]), k=1)
    assert np.array_equal(one.labels, np.zeros(5, dtype=np.int64))
    assert one.cut_weight == 0.0
    # n <= k: singletons.
    tiny = partition_graph(np.ones(3), np.array([0, 1]), np.array([1, 2]),
                           np.array([1.0, 1.0]), k=4)
    assert np.array_equal(tiny.labels, np.arange(3))
    assert tiny.cut_weight == pytest.approx(2.0)
    # No edges at all.
    iso = partition_graph(np.ones(10), np.array([], dtype=np.int64),
                          np.array([], dtype=np.int64), np.array([]), k=2)
    assert iso.cut_weight == 0.0
    with pytest.raises(ValueError):
        partition_graph(np.ones(4), np.array([0]), np.array([1]),
                        np.array([1.0]), k=0)


def test_refinement_fixes_bad_initial_split():
    """KL local search must walk a deliberately bad boundary back to the
    thin bridge."""
    from repro.des.partition import _adjacency, _aggregate_edges, _refine

    node_w, eu, ev, ew = _clustered_graph(2, 6)
    n = node_w.size
    u, v, w = _aggregate_edges(n, eu, ev, ew)
    indptr, adj, adj_w = _adjacency(n, u, v, w)
    # Split one clique down the middle: maximally wrong.
    labels = np.array([0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0], dtype=np.int64)
    before = cut_weight(labels, u, v, w)
    moves = _refine(n, node_w, indptr, adj, adj_w, labels, k=2,
                    ceiling=node_w.sum() / 2 * 1.25, passes=8)
    after = cut_weight(labels, u, v, w)
    assert moves > 0
    assert after < before
    assert after == pytest.approx(0.1)  # the bridge, and only the bridge


# ---------------------------------------------------------------------- #
# knob resolution
# ---------------------------------------------------------------------- #
def test_resolve_shards_default_env_and_argument(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert resolve_shards(None) == DEFAULT_SHARDS
    monkeypatch.setenv("REPRO_SHARDS", "8")
    assert resolve_shards(None) == 8
    assert resolve_shards(3) == 3  # explicit argument beats environment


def test_resolve_shards_rejects_malformed(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "many")
    with pytest.raises(SimulationError, match="REPRO_SHARDS"):
        resolve_shards(None)
    monkeypatch.setenv("REPRO_SHARDS", "0")
    with pytest.raises(SimulationError, match=">= 1"):
        resolve_shards(None)
    with pytest.raises(SimulationError):
        resolve_shards(-2)


def test_resolve_shard_workers_capped_by_cpu_count(monkeypatch):
    monkeypatch.delenv("REPRO_SHARD_WORKERS", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    assert resolve_shard_workers(None, shards=4) == 4   # min(shards, ncpu)
    assert resolve_shard_workers(None, shards=32) == 8  # capped by ncpu
    assert resolve_shard_workers(16, shards=4) == 4     # capped by shards
    assert resolve_shard_workers(16, shards=32) == 8    # capped by ncpu
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert resolve_shard_workers(None, shards=4) == 1
    assert resolve_shard_workers(6, shards=6) == 1


def test_resolve_shard_workers_warns_on_malformed(monkeypatch):
    monkeypatch.setattr(os, "cpu_count", lambda: 8)
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "two")
    with pytest.warns(RuntimeWarning, match="REPRO_SHARD_WORKERS"):
        assert resolve_shard_workers(None, shards=4) == 1
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "-3")
    with pytest.warns(RuntimeWarning, match="positive"):
        assert resolve_shard_workers(None, shards=4) == 1
    monkeypatch.setenv("REPRO_SHARD_WORKERS", "2")
    assert resolve_shard_workers(None, shards=4) == 2


def test_network_validates_every_mode_listing_options(monkeypatch):
    """Construction must fail loudly on any bad mode value, naming the
    valid options — for the solver, the kernel and the scheduler alike."""
    with pytest.raises(SimulationError) as err:
        FlowNetwork(Simulator(), solver="quantum")
    for option in ("component", "global", "sharded"):
        assert option in str(err.value)
    monkeypatch.setenv("REPRO_SOLVER", "fast")
    with pytest.raises(SimulationError, match="sharded"):
        FlowNetwork(Simulator())
    monkeypatch.delenv("REPRO_SOLVER")
    with pytest.raises(SimulationError) as err:
        FlowNetwork(Simulator(), kernel="gpu")
    for option in ("compiled", "python"):
        assert option in str(err.value)
    monkeypatch.setenv("REPRO_KERNEL", "rust")
    with pytest.raises(SimulationError, match="REPRO_KERNEL"):
        FlowNetwork(Simulator())
    monkeypatch.delenv("REPRO_KERNEL")
    with pytest.raises(SimulationError) as err:
        Simulator(scheduler="wheel")
    for option in ("calendar", "heap"):
        assert option in str(err.value)
    monkeypatch.setenv("REPRO_SCHEDULER", "ladder")
    with pytest.raises(SimulationError, match="REPRO_SCHEDULER"):
        Simulator()
    # Shard knobs are validated at construction even when the solver
    # that would use them is not selected.
    monkeypatch.delenv("REPRO_SCHEDULER")
    monkeypatch.setenv("REPRO_SHARDS", "lots")
    with pytest.raises(SimulationError, match="REPRO_SHARDS"):
        FlowNetwork(Simulator(), solver="component")


def test_shards_folded_into_cache_context(monkeypatch):
    from repro.experiments.executor import env_mode_context

    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert env_mode_context()["repro_shards"] == DEFAULT_SHARDS
    monkeypatch.setenv("REPRO_SHARDS", "6")
    assert env_mode_context()["repro_shards"] == 6


def test_machine_shards_passthrough():
    from repro.cluster.machine import Machine, MachineSpec

    spec = MachineSpec(nodes=1, cores_per_node=2)
    machine = Machine(spec, solver="sharded", shards=6)
    assert machine.flows.solver == SOLVER_SHARDED
    assert machine.flows.shards == 6


# ---------------------------------------------------------------------- #
# the worker pool
# ---------------------------------------------------------------------- #
def _random_problem(rng, slack=0.05):
    nres = int(rng.integers(2, 6))
    nclasses = int(rng.integers(2, 10))
    kmax = 2
    class_res = np.full((nclasses, kmax), -1, dtype=np.int64)
    for c in range(nclasses):
        width = int(rng.integers(1, kmax + 1))
        picks = rng.choice(nres, size=width, replace=False)
        class_res[c, :width] = np.sort(picks)
    class_cap = np.where(rng.random(nclasses) < 0.3, np.inf,
                         rng.uniform(5.0, 200.0, size=nclasses))
    mult = rng.integers(1, 4, size=nclasses)
    flow_class = np.repeat(np.arange(nclasses, dtype=np.int64), mult)
    capacities = rng.uniform(50.0, 500.0, size=nres)
    return ShardProblem(flow_class, class_res,
                        np.ascontiguousarray(class_cap, dtype=float),
                        np.ascontiguousarray(capacities), float(slack))


def test_pool_bit_identical_to_in_process():
    rng = np.random.default_rng(7)
    problems = [_random_problem(rng, slack=s)
                for s in (0.0, 0.05, 0.0, 0.1, 0.02)]
    expected = [solve_problem(p, None) for p in problems]
    pool = ShardWorkerPool(workers=2, kernel="python")
    try:
        got = pool.solve_batch(problems)
    finally:
        pool.close()
    assert len(got) == len(expected)
    for (rate_g, used_g), (rate_e, used_e) in zip(got, expected):
        assert rate_g.tobytes() == rate_e.tobytes()
        assert used_g.tobytes() == used_e.tobytes()


def test_pool_grows_arenas_by_respawning():
    rng = np.random.default_rng(8)
    pool = ShardWorkerPool(workers=2, kernel="python",
                           i64_capacity=16, f64_capacity=16, max_problems=2)
    try:
        problems = [_random_problem(rng) for _ in range(6)]
        expected = [solve_problem(p, None) for p in problems]
        got = pool.solve_batch(problems)
        assert pool.respawns >= 1
        for (rate_g, _), (rate_e, _) in zip(got, expected):
            assert rate_g.tobytes() == rate_e.tobytes()
        # The grown pool keeps serving subsequent batches.
        again = pool.solve_batch(problems[:2])
        assert again[0][0].tobytes() == expected[0][0].tobytes()
        assert pool.batches == 2
    finally:
        pool.close()


def test_pool_close_is_idempotent_and_final():
    pool = ShardWorkerPool(workers=1, kernel="python")
    pool.close()
    pool.close()
    assert pool.broken
    with pytest.raises(SimulationError, match="closed"):
        pool.solve_batch([_random_problem(np.random.default_rng(0))])


def test_pool_rejects_bad_worker_count():
    with pytest.raises(SimulationError, match=">= 1"):
        ShardWorkerPool(workers=0, kernel="python")


# ---------------------------------------------------------------------- #
# the sharded FlowNetwork solver
# ---------------------------------------------------------------------- #
def _mega_component(solver, fairness_slack=0.05, shards=None, kernel=None,
                    scheduler=None, shard_workers=None, groups=4,
                    res_per_group=4, writers=3, run_until=None):
    """One weakly coupled mega-component in the Damaris shared-OST shape.

    ``groups`` clusters of equal-capacity resources, each loaded by
    ``writers`` writer classes per resource whose rate caps form
    per-group bands, all fused into a single contention component by a
    chain of thin bridge flows. Returns the network after the first
    solve (``run_until=None``) or after running to ``run_until``.
    """
    sim = Simulator(scheduler=scheduler)
    net = FlowNetwork(sim, solver=solver, fairness_slack=fairness_slack,
                      shards=shards, kernel=kernel,
                      shard_workers=shard_workers)
    # Equal capacities (a balanced partition exists) sized so the top
    # rate-cap band oversubscribes its links: a saturated resource
    # defeats the fast-grant path and forces real water-filling solves.
    links = [net.add_capacity(f"r{g}.{r}", 2e8)
             for g in range(groups) for r in range(res_per_group)]
    for g in range(groups):
        for r in range(res_per_group):
            for w in range(writers):
                cap = 1e6 * 4.0 ** g * (1.0 + 0.13 * w)
                net.transfer([links[g * res_per_group + r]], 2e7,
                             rate_cap=cap, label=f"w{g}.{r}.{w}")
    # Thin bridges chain *every* consecutive resource pair, fusing the
    # groups into one component without moving meaningful bandwidth.
    for i in range(len(links) - 1):
        net.transfer([links[i], links[i + 1]], 1e5, rate_cap=2e4,
                     label=f"bridge{i}")
    if run_until is None:
        sim.run(until=0.0)
    else:
        sim.run(until=run_until)
    return sim, net


def _active_rates(net):
    idx = np.flatnonzero(net._active)
    labels = [net._flows[i].label for i in idx]
    return dict(zip(labels, (float(r) for r in net._rate[idx])))


def test_sharded_first_tick_deviation_bounded():
    slack = 0.05
    _, comp = _mega_component(SOLVER_COMPONENT, fairness_slack=slack)
    _, shrd = _mega_component(SOLVER_SHARDED, fairness_slack=slack)
    stats = shrd.solver_stats
    assert stats["sharded_ticks"] >= 1, "sharded path never engaged"
    assert stats["shard_rejects"] == 0
    assert stats["shard_fallbacks"] == 0
    exact = _active_rates(comp)
    got = _active_rates(shrd)
    assert set(got) == set(exact)
    for label, rate in exact.items():
        deviation = abs(got[label] - rate) / rate
        assert deviation <= slack, (
            f"{label}: sharded {got[label]} vs exact {rate} "
            f"({deviation:.3%} > slack {slack:.0%})")


def test_sharded_bit_identical_at_zero_slack():
    _, comp = _mega_component(SOLVER_COMPONENT, fairness_slack=0.0,
                              run_until=math.inf)
    _, shrd = _mega_component(SOLVER_SHARDED, fairness_slack=0.0,
                              run_until=math.inf)
    assert shrd.solver_stats["sharded_ticks"] == 0  # gated off entirely
    assert shrd.total_bytes_moved == comp.total_bytes_moved
    assert shrd.completed_flows == comp.completed_flows


def test_sharded_shards_one_bit_identical():
    _, comp = _mega_component(SOLVER_COMPONENT, fairness_slack=0.05,
                              run_until=math.inf)
    _, shrd = _mega_component(SOLVER_SHARDED, fairness_slack=0.05,
                              shards=1, run_until=math.inf)
    assert shrd.solver_stats["sharded_ticks"] == 0
    assert shrd.total_bytes_moved == comp.total_bytes_moved
    assert shrd.completed_flows == comp.completed_flows


def test_sharded_full_run_stays_within_slack():
    sim_c, comp = _mega_component(SOLVER_COMPONENT, run_until=math.inf)
    sim_s, shrd = _mega_component(SOLVER_SHARDED, run_until=math.inf)
    assert shrd.completed_flows == comp.completed_flows
    assert shrd.total_bytes_moved == pytest.approx(
        comp.total_bytes_moved, rel=1e-9)
    # Slack-bounded rates bound completion-time drift the same way.
    assert sim_s.now == pytest.approx(sim_c.now, rel=0.05)
    stats = shrd.solver_stats
    assert stats["sharded_ticks"] >= 1
    assert stats["shard_solves"] >= 2
    assert stats["shard_reconcile_iters"] >= stats["sharded_ticks"]
    assert stats["shard_max_imbalance"] >= 1.0
    assert stats["shard_cut_bytes"] > 0.0


def test_sharded_result_cache_hits_across_ticks():
    _, shrd = _mega_component(SOLVER_SHARDED, run_until=math.inf)
    stats = shrd.solver_stats
    # Later ticks disturb a subset of shards; the untouched ones must be
    # served from the digest-keyed cache instead of re-solving.
    assert stats["shard_cache_hits"] > 0


def test_sharded_heavy_cut_rejected_and_exact():
    """Fat bridges blow the cut-weight gate; the tick must fall back to
    the exact solver, bit-identically."""
    def build(solver):
        sim = Simulator()
        net = FlowNetwork(sim, solver=solver, fairness_slack=0.05)
        links = [net.add_capacity(f"r{i}", 1e9) for i in range(16)]
        for i, link in enumerate(links):
            for w in range(3):
                net.transfer([link], 2e7, rate_cap=1e6 * (1 + 0.1 * w + i),
                             label=f"w{i}.{w}")
        for i in range(len(links) - 1):
            # No rate cap and sized to outlive every writer: each bridge
            # could pull a full capacity across the cut for the whole
            # run, so no partition can bound the interaction.
            net.transfer([links[i], links[i + 1]], 1e11, label=f"fat{i}")
        sim.run(until=math.inf)
        return net

    comp = build(SOLVER_COMPONENT)
    shrd = build(SOLVER_SHARDED)
    stats = shrd.solver_stats
    assert stats["shard_rejects"] >= 1
    assert stats["sharded_ticks"] == 0
    assert shrd.total_bytes_moved == comp.total_bytes_moved
    assert shrd.completed_flows == comp.completed_flows


def test_reconciliation_iteration_cap_falls_back(monkeypatch):
    """With the reconciliation budget squeezed to one round the fixed
    point cannot settle (cut pins start at +inf, so the first residual
    is infinite); the solver must fall back to the exact solve and stay
    bit-identical to the component run."""
    monkeypatch.setattr(bw, "_SHARD_MAX_RECONCILE", 1)
    _, comp = _mega_component(SOLVER_COMPONENT, run_until=math.inf)
    _, shrd = _mega_component(SOLVER_SHARDED, run_until=math.inf)
    stats = shrd.solver_stats
    assert stats["shard_fallbacks"] >= 1
    assert stats["sharded_ticks"] == 0
    assert shrd.total_bytes_moved == comp.total_bytes_moved
    assert shrd.completed_flows == comp.completed_flows


def test_reconciliation_converges_within_budget():
    _, shrd = _mega_component(SOLVER_SHARDED, run_until=math.inf)
    stats = shrd.solver_stats
    assert stats["shard_fallbacks"] == 0
    assert stats["sharded_ticks"] >= 1
    # Pins only ever shrink, so the loop settles well inside the cap.
    per_tick = stats["shard_reconcile_iters"] / stats["sharded_ticks"]
    assert per_tick <= bw._SHARD_MAX_RECONCILE


def test_sharded_worker_pool_matches_in_process():
    """REPRO_SHARD_WORKERS is a throughput knob: forcing a 2-process
    pool must not change a single observable."""
    _, inproc = _mega_component(SOLVER_SHARDED, run_until=math.inf,
                                shard_workers=1)
    sim, pooled = _mega_component(SOLVER_SHARDED, run_until=math.inf,
                                  shard_workers=2)
    if pooled.shard_workers == 1:
        pytest.skip("single-core host: pool capped to in-process")
    assert pooled.total_bytes_moved == inproc.total_bytes_moved
    assert pooled.completed_flows == inproc.completed_flows
    assert pooled._shard_pool is not None
    assert not pooled._shard_pool.broken


# ---------------------------------------------------------------------- #
# randomized storm equivalence: solver x kernel x scheduler
# ---------------------------------------------------------------------- #
def _bridged_storm(solver, seed, fairness_slack, kernel=None,
                   scheduler=None, nodes=8, writers=4):
    """Randomized arrivals/cancellations on a bridged multi-node net."""
    rng = np.random.default_rng(seed)
    sim = Simulator(scheduler=scheduler)
    net = FlowNetwork(sim, solver=solver, fairness_slack=fairness_slack,
                      kernel=kernel)
    nics = [net.add_capacity(f"nic{i}", 1e9) for i in range(nodes)]
    tgts = [net.add_capacity(f"ost{i}", 4e8) for i in range(nodes)]
    completions = []

    def record(evt):
        completions.append((evt.value.label, evt.value.end_time))

    for n in range(nodes):
        for w in range(writers):
            nbytes = float(rng.integers(1_000_000, 20_000_000))
            start = float(rng.uniform(0.0, 0.1))
            cap = math.inf if rng.random() < 0.4 else float(
                rng.uniform(5e7, 3e8))

            def launch(n=n, w=w, nbytes=nbytes, cap=cap):
                flow = net.transfer([nics[n], tgts[n]], nbytes,
                                    rate_cap=cap, label=f"w{n}.{w}")
                flow.event.callbacks.append(record)
            sim.schedule_callback(start, launch)

    # Bridges fuse every node pair chain-wise for part of the run.
    for b in range(nodes - 1):
        start = float(rng.uniform(0.0, 0.05))

        def launch_bridge(b=b):
            flow = net.transfer([tgts[b], tgts[b + 1]], 2e6,
                                rate_cap=1e5, label=f"bridge{b}")
            flow.event.callbacks.append(record)
        sim.schedule_callback(start, launch_bridge)

    sim.run()
    return {
        "completions": completions,
        "bytes_moved": net.total_bytes_moved,
        "completed": net.completed_flows,
        "sim_time": sim.now,
    }


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("scheduler", ["calendar", "heap"])
@pytest.mark.parametrize("seed", range(3))
def test_storm_sharded_bit_identical_at_zero_slack(seed, scheduler, kernel):
    shrd = _bridged_storm(SOLVER_SHARDED, seed, 0.0, kernel=kernel,
                          scheduler=scheduler)
    glob = _bridged_storm(SOLVER_GLOBAL, seed, 0.0, kernel=kernel,
                          scheduler=scheduler)
    assert shrd["completions"] == glob["completions"]
    assert shrd["bytes_moved"] == glob["bytes_moved"]
    assert shrd["completed"] == glob["completed"]
    assert shrd["sim_time"] == glob["sim_time"]


@pytest.mark.parametrize("seed", range(3))
def test_storm_sharded_bounded_at_positive_slack(seed):
    slack = 0.08
    shrd = _bridged_storm(SOLVER_SHARDED, seed, slack)
    comp = _bridged_storm(SOLVER_COMPONENT, seed, slack)
    assert shrd["completed"] == comp["completed"]
    assert shrd["bytes_moved"] == pytest.approx(comp["bytes_moved"],
                                                rel=1e-6)
    assert shrd["sim_time"] == pytest.approx(comp["sim_time"], rel=slack)


# ---------------------------------------------------------------------- #
# batched same-tick component solves
# ---------------------------------------------------------------------- #
def _disjoint_batch_run(solver):
    sim = Simulator()
    net = FlowNetwork(sim, solver=solver)
    links = [net.add_capacity(f"l{i}", 1e8 * (i + 1)) for i in range(6)]
    for i, link in enumerate(links):
        for w in range(3):
            net.transfer([link], 5e6, rate_cap=2e7 * (1 + 0.3 * w),
                         label=f"w{i}.{w}")
    # Same-tick capless arrivals on several disjoint components: the
    # fast path cannot absorb them, so the recompute sees multiple
    # dirty roots at once — the batched single-kernel invocation.
    def late_arrivals():
        for i in (0, 2, 4):
            net.transfer([links[i]], 3e6, label=f"late{i}")
    sim.schedule_callback(0.01, late_arrivals)
    sim.run()
    return net, sim.now


def test_batched_component_solves_bit_identical_to_global():
    comp, t_comp = _disjoint_batch_run(SOLVER_COMPONENT)
    glob, t_glob = _disjoint_batch_run(SOLVER_GLOBAL)
    assert comp.solver_stats["batched_solves"] >= 1
    assert glob.solver_stats["batched_solves"] == 0
    assert comp.total_bytes_moved == glob.total_bytes_moved
    assert comp.completed_flows == glob.completed_flows
    assert t_comp == t_glob


def test_batched_solves_counted_in_stats_and_trace():
    from repro.observe import Tracer, solver_table

    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    links = [net.add_capacity(f"l{i}", 1e9) for i in range(4)]
    for link in links:
        net.transfer([link], 1e6, rate_cap=5e5)

    def burst():
        # Only a subset of the components: dirtying all of them would
        # take the whole-network shortcut instead of the batched path.
        for link in links[:2]:
            net.transfer([link], 1e6)
    sim.schedule_callback(0.01, burst)
    sim.run()
    assert net.solver_stats["batched_solves"] >= 1
    rows = solver_table(tracer)
    assert rows and rows[0]["solver"] == SOLVER_COMPONENT


# ---------------------------------------------------------------------- #
# shard counters: stats, trace, tracereport
# ---------------------------------------------------------------------- #
def test_shard_counters_only_for_sharded_solver():
    _, comp = _mega_component(SOLVER_COMPONENT)
    _, shrd = _mega_component(SOLVER_SHARDED)
    assert "shards" not in comp.solver_stats
    stats = shrd.solver_stats
    for key in ("shards", "shard_workers", "sharded_ticks", "shard_solves",
                "shard_cache_hits", "shard_rejects", "shard_fallbacks",
                "shard_reconcile_iters", "shard_cut_bytes",
                "shard_max_imbalance"):
        assert key in stats, f"missing counter {key}"
    assert stats["shards"] == DEFAULT_SHARDS


def test_shard_counters_in_trace_and_tracereport(tmp_path, capsys):
    from repro.observe import Tracer, dump_jsonl, solver_table
    from repro.tools import tracereport

    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    net = FlowNetwork(sim, solver=SOLVER_SHARDED, fairness_slack=0.05)
    links = [net.add_capacity(f"r{i}", 2e8) for i in range(16)]
    for i, link in enumerate(links):
        for w in range(3):
            net.transfer([link], 2e7,
                         rate_cap=1e6 * 4.0 ** (i // 4) * (1 + 0.13 * w))
    for i in range(len(links) - 1):
        net.transfer([links[i], links[i + 1]], 1e5, rate_cap=2e4)
    sim.run()
    assert net.solver_stats["sharded_ticks"] >= 1

    events = [e for e in tracer.events_in("solver") if "shards" in e.attrs]
    assert events, "solver events carry no shard counters"
    rows = solver_table(tracer)
    assert rows[0]["solver"] == SOLVER_SHARDED
    for col in ("shards", "shard_solves", "cut_bytes", "imbalance",
                "reconcile_iters"):
        assert col in rows[0], f"solver_table lacks {col}"
    assert rows[0]["shards"] >= 2
    assert rows[0]["cut_bytes"] > 0.0

    path = tmp_path / "sharded.jsonl"
    dump_jsonl(tracer, str(path))
    assert tracereport.main([str(path), "--by", "solver"]) == 0
    out = capsys.readouterr().out
    assert "sharded" in out
    assert "cut_bytes" in out
    assert "reconcile_iters" in out


def test_component_trace_rows_unchanged_by_shard_columns():
    """Non-sharded traces must keep the pre-shard column set — old
    fixtures and committed baselines render byte-identically."""
    from repro.observe import Tracer, solver_table

    sim = Simulator()
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    net = FlowNetwork(sim, solver=SOLVER_COMPONENT)
    link = net.add_capacity("l", 1e9)
    net.transfer([link], 1e6)
    sim.run()
    rows = solver_table(tracer)
    assert rows and "shards" not in rows[0]
    assert "cut_bytes" not in rows[0]
