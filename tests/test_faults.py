"""Fault-injection suite: schedules, the injector, degradation metrics.

What these pin down:

- the declarative schedule layer validates its specs and round-trips
  through JSON unchanged;
- injection is deterministic: same seed + same schedule => bit-identical
  traces, serial or parallel, cache-cold or cache-warm;
- recovery restores healthy state *exactly*: a fault window placed over
  idle compute leaves every measurement bit-identical to a fault-free
  run;
- the zero-overhead contract: no schedule => the injector is never
  constructed and the run is indistinguishable from a harness without
  the ``faults`` parameter;
- crash semantics per strategy: synchronous strategies lose nothing,
  plain Damaris drops buffered iterations, the failover variant replays
  them from the surviving shm buffer.
"""

import json

import pytest

from repro.cache import ResultCache
from repro.errors import ReproError
from repro.experiments.executor import SweepTask, run_sweep
from repro.experiments.figures import default_fault_schedule
from repro.experiments.specs import run_spec
from repro.experiments.harness import run_experiment
from repro.experiments.platforms import kraken_preset
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSchedule,
    FaultScheduleError,
    FaultSpec,
)
from repro.observe.tracer import Tracer
from repro.strategies import (
    CollectiveIOStrategy,
    DamarisFailoverStrategy,
    DamarisStrategy,
    FilePerProcessStrategy,
)

# The empirically placed crash of the committed example schedule: on
# kraken at 48 cores, seed 42, two write phases, the damaris write
# phase 0 runs ~224.9-225.1 s, so a crash at 225.0 lands mid-phase with
# iteration 0 buffered but not yet persisted.
CRASH = {"kind": "node_crash", "time": 225.0, "duration": 30.0,
         "nodes": [1]}


def run_one(strategy, faults=None, tracer=None, seed=42, ncores=48):
    machine, fs, workload = kraken_preset().build(ncores, seed=seed)
    return run_experiment(machine, fs, workload, strategy,
                          write_phases=2, tracer=tracer, faults=faults)


def schedule_of(*fault_dicts, name="test"):
    return FaultSchedule.from_dict(
        {"name": name, "faults": list(fault_dicts)})


# ---------------------------------------------------------------------- #
# schedule layer
# ---------------------------------------------------------------------- #
class TestFaultSchedule:
    def test_spec_validation(self):
        with pytest.raises(FaultScheduleError):
            FaultSpec(kind="meteor_strike", time=0.0, duration=1.0)
        with pytest.raises(FaultScheduleError):  # crashes need nodes
            FaultSpec(kind="node_crash", time=0.0, duration=1.0)
        with pytest.raises(FaultScheduleError):  # negative time
            FaultSpec(kind="straggler", time=-1.0, duration=1.0,
                      factor=2.0)
        with pytest.raises(FaultScheduleError):  # zero-length window
            FaultSpec(kind="straggler", time=0.0, duration=0.0,
                      factor=2.0)
        with pytest.raises(FaultScheduleError):  # slowdowns are >= 1
            FaultSpec(kind="straggler", time=0.0, duration=1.0,
                      factor=0.5)
        with pytest.raises(FaultScheduleError):  # fractions are (0, 1]
            FaultSpec(kind="nic_degrade", time=0.0, duration=1.0,
                      factor=2.0)
        with pytest.raises(FaultScheduleError):
            FaultSpec(kind="ost_brownout", time=0.0, duration=1.0,
                      factor=0.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultScheduleError):
            FaultSpec.from_dict({"kind": "straggler", "time": 0.0,
                                 "duration": 1.0, "factor": 2.0,
                                 "blast_radius": 3})

    def test_round_trip(self, tmp_path):
        schedule = default_fault_schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule
        path = tmp_path / "sched.json"
        schedule.to_json(str(path))
        assert FaultSchedule.from_json(str(path)) == schedule

    def test_committed_example_matches_default(self):
        """examples/fault_schedule.json is the default schedule, verbatim."""
        with open("examples/fault_schedule.json") as fh:
            on_disk = json.load(fh)
        assert FaultSchedule.from_dict(on_disk) == default_fault_schedule()

    def test_kinds_and_of_kind(self):
        schedule = default_fault_schedule()
        assert set(schedule.kinds) == set(FAULT_KINDS)
        crashes = schedule.of_kind("node_crash")
        assert len(crashes) == 1
        assert crashes.name == "example/node_crash"
        assert all(fault.kind == "node_crash" for fault in crashes)

    def test_end_covers_stagger(self):
        spec = FaultSpec(kind="correlated_crash", time=10.0,
                         duration=5.0, nodes=(0, 1, 2), stagger=2.0)
        assert spec.end == 10.0 + 2 * 2.0 + 5.0
        assert schedule_of(spec.to_dict()).end == spec.end


# ---------------------------------------------------------------------- #
# injector semantics
# ---------------------------------------------------------------------- #
class TestInjector:
    def test_unknown_node_rejected_at_arm(self):
        faults = schedule_of({"kind": "node_crash", "time": 1.0,
                              "duration": 1.0, "nodes": [99]})
        with pytest.raises(FaultScheduleError):
            run_one(FilePerProcessStrategy(), faults=faults)

    def test_unknown_target_rejected_at_arm(self):
        faults = schedule_of({"kind": "ost_brownout", "time": 1.0,
                              "duration": 1.0, "factor": 0.5,
                              "targets": [999]})
        with pytest.raises(FaultScheduleError):
            run_one(FilePerProcessStrategy(), faults=faults)

    def test_double_arm_rejected(self):
        from repro.mpi.comm import Communicator
        from repro.strategies.base import StrategyContext
        injector = FaultInjector(schedule_of(CRASH))
        machine, fs, workload = kraken_preset().build(48, seed=42)
        comm = Communicator(machine, [machine.nodes[0].cores[0]])
        ctx = StrategyContext(machine=machine, fs=fs, comm=comm,
                              workload=workload)
        injector.arm(ctx, FilePerProcessStrategy())
        with pytest.raises(FaultScheduleError):
            injector.arm(ctx, FilePerProcessStrategy())

    def test_idle_window_fault_is_invisible(self):
        """A brownout over pure compute time (no I/O in flight) recovers
        exactly: every measurement matches the fault-free run."""
        baseline = run_one(FilePerProcessStrategy())
        faulted = run_one(
            FilePerProcessStrategy(),
            faults=schedule_of({"kind": "ost_brownout", "time": 50.0,
                                "duration": 50.0, "factor": 0.5}))
        assert faulted.run_time == baseline.run_time
        assert faulted.drain_time == baseline.drain_time
        assert [p.duration for p in faulted.phases] \
            == [p.duration for p in baseline.phases]
        record = faulted.fault_records[0]
        assert record["recovery_time"] == 50.0
        assert record["data_loss_bytes"] == 0.0

    def test_zero_overhead_without_schedule(self):
        """faults=None and an empty schedule are bit-identical to not
        passing the parameter at all (the injector is never built)."""
        tracers = [Tracer(), Tracer(), Tracer()]
        with_none = run_one(DamarisStrategy(), faults=None,
                            tracer=tracers[0])
        with_empty = run_one(DamarisStrategy(),
                             faults=FaultSchedule(faults=()),
                             tracer=tracers[1])
        plain = run_one(DamarisStrategy(), tracer=tracers[2])
        assert with_none.run_time == with_empty.run_time == plain.run_time
        assert (with_none.drain_time == with_empty.drain_time
                == plain.drain_time)
        assert tracers[0].spans == tracers[1].spans == tracers[2].spans
        assert tracers[0].events == tracers[1].events == tracers[2].events
        assert with_empty.fault_records == []

    def test_straggler_dilates_run(self):
        baseline = run_one(CollectiveIOStrategy())
        faulted = run_one(
            CollectiveIOStrategy(),
            faults=schedule_of({"kind": "straggler", "time": 0.0,
                                "duration": 60.0, "factor": 1.25,
                                "nodes": [2]}))
        # One slow node delays everyone through the barrier.
        assert faulted.run_time > baseline.run_time * 1.05

    def test_ost_brownout_slows_writes(self):
        baseline = run_one(CollectiveIOStrategy())
        faulted = run_one(
            CollectiveIOStrategy(),
            faults=schedule_of({"kind": "ost_brownout", "time": 200.0,
                                "duration": 60.0, "factor": 0.01}))
        assert faulted.run_time > baseline.run_time

    def test_correlated_crash_staggers_records(self):
        faults = schedule_of({"kind": "correlated_crash", "time": 225.0,
                              "duration": 30.0, "nodes": [2, 3],
                              "stagger": 2.0})
        result = run_one(FilePerProcessStrategy(), faults=faults)
        times = sorted(r["time"] for r in result.fault_records)
        assert times == [225.0, 227.0]
        assert {r["affected"][0] for r in result.fault_records} \
            == {"node2", "node3"}
        assert all(r["recovery_time"] == 30.0
                   for r in result.fault_records)

    def test_fault_trace_categories(self):
        tracer = Tracer()
        run_one(DamarisStrategy(), faults=schedule_of(CRASH),
                tracer=tracer)
        events = tracer.events_in("fault")
        assert {e.name for e in events} \
            == {"node_crash:inject", "node_crash:recover"}
        spans = tracer.spans_in("fault")
        assert len(spans) == 1
        assert spans[0].start == 225.0 and spans[0].end == 255.0


# ---------------------------------------------------------------------- #
# crash-during-write-phase semantics, per strategy
# ---------------------------------------------------------------------- #
class TestCrashSemantics:
    def test_synchronous_strategies_lose_nothing(self):
        for strategy in (FilePerProcessStrategy(), CollectiveIOStrategy()):
            result = run_one(strategy, faults=schedule_of(CRASH))
            record = result.fault_records[0]
            assert result.data_loss_bytes == 0.0
            assert record["iterations_lost"] == 0
            assert record["recovery_time"] == 30.0

    def test_plain_damaris_drops_buffered_iteration(self):
        result = run_one(DamarisStrategy(), faults=schedule_of(CRASH))
        record = result.fault_records[0]
        assert record["iterations_lost"] == 1
        assert result.data_loss_bytes > 1e6  # the buffered iteration
        assert record["iterations_replayed"] == 0
        assert record["recovery_time"] == 30.0

    def test_failover_replays_with_zero_loss(self):
        result = run_one(DamarisFailoverStrategy(),
                         faults=schedule_of(CRASH))
        record = result.fault_records[0]
        assert result.data_loss_bytes == 0.0
        assert record["iterations_lost"] == 0
        assert record["iterations_replayed"] == 1
        # Recovery includes the replay write, so it outlasts the outage.
        assert record["recovery_time"] > 30.0

    def test_failover_writes_all_files(self):
        """The replayed iteration reaches storage: same file count as a
        fault-free run."""
        baseline = run_one(DamarisFailoverStrategy())
        faulted = run_one(DamarisFailoverStrategy(),
                          faults=schedule_of(CRASH))
        assert faulted.files_created == baseline.files_created


# ---------------------------------------------------------------------- #
# determinism: replay, serial/parallel, cache cold/warm
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_and_schedule_is_bit_identical(self):
        traces = []
        for _ in range(2):
            tracer = Tracer()
            run_one(DamarisFailoverStrategy(),
                    faults=default_fault_schedule().of_kind("node_crash"),
                    tracer=tracer)
            traces.append(tracer)
        assert traces[0].spans == traces[1].spans
        assert traces[0].events == traces[1].events

    @staticmethod
    def _specs():
        schedule = default_fault_schedule()
        return [
            {"preset": "kraken", "ncores": 48, "seed": 42,
             "write_phases": 2, "strategy": {"kind": kind},
             "faults": schedule.of_kind(fault_kind).to_dict()}
            for kind in ("damaris", "damaris_failover")
            for fault_kind in ("node_crash", "ost_brownout")
        ]

    @staticmethod
    def _digest(result):
        return (result.strategy, result.run_time, result.drain_time,
                result.data_loss_bytes, result.mean_recovery_time,
                [p.duration for p in result.phases],
                result.fault_records)

    def test_serial_matches_parallel(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        tasks = [SweepTask(run_spec, (spec,)) for spec in self._specs()]
        serial = run_sweep(tasks, parallel=1, cache=False)
        tasks = [SweepTask(run_spec, (spec,)) for spec in self._specs()]
        fanned = run_sweep(tasks, parallel=2, cache=False)
        assert [self._digest(r) for r in serial] \
            == [self._digest(r) for r in fanned]

    def test_cache_warm_matches_cold_and_keys_fold_schedule(
            self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        tasks = [SweepTask(run_spec, (spec,)) for spec in self._specs()]
        cold = run_sweep(tasks, parallel=1, cache=cache)
        assert cache.stats.misses == len(tasks)
        tasks = [SweepTask(run_spec, (spec,)) for spec in self._specs()]
        warm = run_sweep(tasks, parallel=1, cache=cache)
        assert cache.stats.hits == len(tasks)
        assert [self._digest(r) for r in cold] \
            == [self._digest(r) for r in warm]
        # A different schedule must be a different cache key.
        changed = self._specs()[0]
        changed["faults"]["faults"][0]["time"] = 226.0
        misses_before = cache.stats.misses
        run_sweep([SweepTask(run_spec, (changed,))], parallel=1,
                  cache=cache)
        assert cache.stats.misses == misses_before + 1


# ---------------------------------------------------------------------- #
# harness guard rails
# ---------------------------------------------------------------------- #
def test_harness_still_validates_phases():
    machine, fs, workload = kraken_preset().build(48, seed=42)
    with pytest.raises(ReproError):
        run_experiment(machine, fs, workload, FilePerProcessStrategy(),
                       write_phases=0)
