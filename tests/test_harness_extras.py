"""Additional harness coverage: multi-block phases, phase accounting,
and cross-strategy invariants on one platform instance."""

import numpy as np
import pytest

from repro.apps.workload import CM1Workload
from repro.cluster import Machine, MachineSpec, NoNoise
from repro.experiments.harness import PhaseStats, run_experiment
from repro.storage import Lustre, MetadataSpec, TargetSpec
from repro.strategies import DamarisStrategy, NoIOStrategy
from repro.units import GiB


def quiet_platform():
    machine = Machine(
        MachineSpec(nodes=2, cores_per_node=4, mem_bandwidth=4 * GiB,
                    nic_bandwidth=2 * GiB),
        seed=31, noise=NoNoise(), completion_slack=0.0, fairness_slack=0.0)
    fs = Lustre(machine, ntargets=4,
                target_spec=TargetSpec(straggler_sigma=0.0,
                                       request_latency=0.0,
                                       object_half=1e9, stream_half=1e9,
                                       queue_depth=0),
                metadata_spec=MetadataSpec(sigma=0.0))
    return machine, fs


def workload():
    return CM1Workload(subdomain=(16, 16, 16), seconds_per_iteration=1.0,
                       iterations_per_output=2)


class TestComputeBlocks:
    def test_multiple_compute_blocks_per_phase(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, workload(), NoIOStrategy(),
                                write_phases=1, compute_blocks_per_phase=3)
        # 3 blocks x 2 iterations x 1 s, plus microsecond barrier costs.
        assert result.run_time == pytest.approx(3 * 2 * 1.0, abs=1e-3)

    def test_phase_start_times_increase(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, workload(), NoIOStrategy(),
                                write_phases=3)
        starts = [p.start_time for p in result.phases]
        assert starts == sorted(starts)
        assert starts[0] > 0


class TestPhaseStats:
    def test_derived_statistics(self):
        stats = PhaseStats(phase=0, start_time=10.0, duration=2.0,
                           rank_times=np.array([0.5, 1.0, 1.5]))
        assert stats.rank_mean == pytest.approx(1.0)
        assert stats.rank_max == 1.5
        assert stats.rank_min == 0.5


class TestDamarisAccounting:
    def test_io_fraction_near_zero_for_damaris(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, workload(), DamarisStrategy(),
                                write_phases=2)
        assert result.io_fraction < 0.05

    def test_bytes_per_phase_includes_dilation(self):
        machine, fs = quiet_platform()
        w = workload()
        result = run_experiment(machine, fs, w, DamarisStrategy(),
                                write_phases=1)
        dilation = w.dilation(4, 1)
        expected = w.bytes_per_core(dilation) * result.compute_ranks
        assert result.bytes_per_phase == pytest.approx(expected)

    def test_dedicated_windows_cover_phases(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, workload(), DamarisStrategy(),
                                write_phases=2)
        assert len(result.dedicated_windows) == 2
        assert all(w > 0 for w in result.dedicated_windows)
