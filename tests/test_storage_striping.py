"""Unit + property tests for stripe layouts and the target service model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec
from repro.errors import StorageError
from repro.storage import StorageTarget, StripeLayout, TargetSpec
from repro.storage.striping import pick_targets
from repro.units import GiB, KiB, MiB


class TestStripeLayout:
    def test_validation(self):
        with pytest.raises(StorageError):
            StripeLayout(0, (0,))
        with pytest.raises(StorageError):
            StripeLayout(1024, ())

    def test_target_of(self):
        layout = StripeLayout(100, (3, 7, 9))
        assert layout.target_of(0) == 3
        assert layout.target_of(99) == 3
        assert layout.target_of(100) == 7
        assert layout.target_of(250) == 9
        assert layout.target_of(300) == 3  # wraps

    def test_split_single_stripe(self):
        layout = StripeLayout(1024, (0, 1))
        assert layout.split(0, 512) == {0: 512}

    def test_split_crossing_boundary(self):
        layout = StripeLayout(1024, (0, 1))
        assert layout.split(512, 1024) == {0: 512, 1: 512}

    def test_split_whole_cycles(self):
        layout = StripeLayout(100, (5, 6))
        # 4 full stripes: 2 per target.
        assert layout.split(0, 400) == {5: 200, 6: 200}

    def test_split_zero_bytes(self):
        assert StripeLayout(100, (0,)).split(50, 0) == {}

    def test_split_negative_raises(self):
        with pytest.raises(StorageError):
            StripeLayout(100, (0,)).split(0, -1)

    def test_stripes_touched(self):
        layout = StripeLayout(100, (0, 1))
        assert list(layout.stripes_touched(150, 200)) == [1, 2, 3]
        assert list(layout.stripes_touched(0, 0)) == []

    @given(
        offset=st.integers(min_value=0, max_value=10**9),
        nbytes=st.integers(min_value=1, max_value=10**8),
        stripe_size=st.integers(min_value=1, max_value=10**7),
        ntargets=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_split_conserves_bytes(self, offset, nbytes, stripe_size,
                                   ntargets):
        """Property: the per-target segments always sum to the request."""
        layout = StripeLayout(stripe_size, tuple(range(ntargets)))
        segments = layout.split(offset, nbytes)
        assert sum(segments.values()) == nbytes
        assert all(t in range(ntargets) for t in segments)

    @given(
        nbytes=st.integers(min_value=1, max_value=10**8),
        stripe_size=st.integers(min_value=1, max_value=10**6),
        ntargets=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_bulk_path_matches_naive_path(self, nbytes, stripe_size,
                                          ntargets):
        """The fast whole-cycle path and the naive loop must agree."""
        layout = StripeLayout(stripe_size, tuple(range(ntargets)))
        got = layout.split(0, nbytes)

        naive = {}
        position = 0
        while position < nbytes:
            stripe = position // stripe_size
            end = min((stripe + 1) * stripe_size, nbytes)
            target = stripe % ntargets
            naive[target] = naive.get(target, 0) + (end - position)
            position = end
        assert got == naive

    def test_pick_targets_wraps(self):
        assert pick_targets(4, 3, 2) == (2, 3, 0)

    def test_pick_targets_clamps_count(self):
        assert pick_targets(2, 10, 0) == (0, 1)

    def test_pick_targets_requires_targets(self):
        with pytest.raises(StorageError):
            pick_targets(0, 1, 0)


class TestTargetSpec:
    def test_validation(self):
        with pytest.raises(StorageError):
            TargetSpec(peak_bandwidth=0)
        with pytest.raises(StorageError):
            TargetSpec(min_efficiency=0)
        with pytest.raises(StorageError):
            TargetSpec(object_half=0)
        with pytest.raises(StorageError):
            TargetSpec(straggler_sigma=-1)


class TestStorageTarget:
    def make_target(self, **spec_kwargs):
        machine = Machine(MachineSpec(nodes=1, cores_per_node=2),
                          seed=5, completion_slack=0.0, fairness_slack=0.0)
        spec = TargetSpec(**spec_kwargs)
        return machine, StorageTarget(machine, "t0", spec)

    def test_efficiency_degrades_with_objects(self):
        _, target = self.make_target(object_half=10.0)
        assert target.efficiency(1, 1) == 1.0
        assert target.efficiency(2, 2) < 1.0
        # At the half-point (+1 object), efficiency is ~50 %.
        assert target.efficiency(11, 11) == pytest.approx(0.5, rel=0.05)
        assert target.efficiency(10000, 1) >= target.spec.min_efficiency

    def test_stream_curve_is_gentler_than_object_curve(self):
        _, target = self.make_target(object_half=20.0, stream_half=1500.0)
        # 100 streams inside ONE file barely hurt; 100 files hurt a lot.
        one_file = target.efficiency(1, 100)
        many_files = target.efficiency(100, 100)
        assert one_file > 0.9
        assert many_files < 0.25

    def test_efficiency_floor(self):
        _, target = self.make_target(object_half=1.0, min_efficiency=0.25)
        assert target.efficiency(1000, 1000) == 0.25

    def test_request_rate_cap_small_requests_penalised(self):
        _, target = self.make_target(request_overhead_bytes=256 * KiB)
        small = target.request_rate_cap(4 * KiB)
        large = target.request_rate_cap(64 * MiB)
        assert small < 0.05 * target.spec.stream_peak
        assert large > 0.95 * target.spec.stream_peak

    def test_straggler_factor_is_positive_and_seeded(self):
        machine, target = self.make_target(straggler_sigma=0.5)
        factors = [target.straggler_factor() for _ in range(100)]
        assert all(f > 0 for f in factors)
        assert np.std(factors) > 0

    def test_straggler_disabled(self):
        _, target = self.make_target(straggler_sigma=0.0)
        assert target.straggler_factor() == 1.0

    def test_write_segment_moves_bytes(self):
        machine, target = self.make_target(straggler_sigma=0.0,
                                           request_latency=0.0)
        node = machine.nodes[0]
        proc = machine.sim.process(
            target.write_segment(node, 10 * MiB, file_id=1))
        machine.sim.run()
        assert proc.processed
        assert target.bytes_written == 10 * MiB
        assert target.requests_served == 1
        assert target.active_streams == 0

    def test_concurrent_objects_degrade_capacity(self):
        machine, target = self.make_target(
            straggler_sigma=0.0, request_latency=0.0, object_half=2.0)
        node = machine.nodes[0]
        for i in range(4):
            machine.sim.process(
                target.write_segment(node, 10 * MiB, file_id=i))
        baseline_machine, baseline_target = self.make_target(
            straggler_sigma=0.0, request_latency=0.0, object_half=1e9)
        for i in range(4):
            baseline_machine.sim.process(
                baseline_target.write_segment(baseline_machine.nodes[0],
                                              10 * MiB, file_id=i))
        machine.sim.run()
        baseline_machine.sim.run()
        assert machine.sim.now > baseline_machine.sim.now

    def test_granularity_caps_stream_rate(self):
        machine, target = self.make_target(
            straggler_sigma=0.0, request_latency=0.0,
            request_overhead_bytes=1 * MiB)
        node = machine.nodes[0]
        # 10 MiB written with 64 KiB granularity: cap = peak * 1/17.
        proc = machine.sim.process(
            target.write_segment(node, 10 * MiB, file_id=1,
                                 granularity=64 * KiB))
        machine.sim.run()
        coarse_machine, coarse_target = self.make_target(
            straggler_sigma=0.0, request_latency=0.0,
            request_overhead_bytes=1 * MiB)
        coarse_machine.sim.process(
            coarse_target.write_segment(coarse_machine.nodes[0], 10 * MiB,
                                        file_id=1))
        coarse_machine.sim.run()
        assert machine.sim.now > 5 * coarse_machine.sim.now

    def test_interference_validation_and_effect(self):
        machine, target = self.make_target(straggler_sigma=0.0,
                                           request_latency=0.0)
        with pytest.raises(StorageError):
            target.set_interference(0.0)
        target.set_interference(0.5)
        assert target.link.capacity == pytest.approx(
            0.5 * target.spec.peak_bandwidth)
