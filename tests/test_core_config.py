"""Tests for the Damaris XML configuration."""

import pytest

from repro.core import DamarisConfig
from repro.errors import (
    ConfigurationError,
    UnknownEventError,
    UnknownLayoutError,
    UnknownVariableError,
)
from repro.units import MB, MiB

PAPER_XML = """
<damaris>
  <layout name="my_layout" type="real" dimensions="64,16,2"
          language="fortran" />
  <variable name="my_variable" layout="my_layout" />
  <event name="my_event" action="do_something" using="my_plugin.so"
         scope="local" />
</damaris>
"""


class TestXMLParsing:
    def test_paper_example_parses(self):
        config = DamarisConfig.from_xml(PAPER_XML)
        layout = config.layout_of("my_variable")
        assert layout.dimensions == (64, 16, 2)
        assert layout.language == "fortran"
        assert layout.nbytes == 64 * 16 * 2 * 4
        action = config.action_for("my_event")
        assert action.action == "do_something"
        assert action.using == "my_plugin.so"
        assert action.scope == "local"

    def test_architecture_section(self):
        config = DamarisConfig.from_xml("""
        <damaris>
          <architecture>
            <buffer size="64MB" allocator="partitioned" />
            <dedicated cores="2" />
            <queue size="128" />
          </architecture>
          <layout name="l" type="int" dimensions="4" />
          <variable name="v" layout="l" />
        </damaris>
        """)
        assert config.buffer_size == 64 * MB
        assert config.allocator == "partitioned"
        assert config.dedicated_cores == 2
        assert config.queue_size == 128

    def test_malformed_xml(self):
        with pytest.raises(ConfigurationError):
            DamarisConfig.from_xml("<damaris><layout></damaris>")

    def test_missing_attribute(self):
        with pytest.raises(ConfigurationError):
            DamarisConfig.from_xml(
                '<damaris><layout name="l" type="int" /></damaris>')

    def test_dangling_layout_reference(self):
        with pytest.raises(UnknownLayoutError):
            DamarisConfig.from_xml("""
            <damaris><variable name="v" layout="ghost" /></damaris>
            """)

    def test_roundtrip_through_to_xml(self):
        config = DamarisConfig.from_xml(PAPER_XML)
        config.buffer_size = 32 * MiB
        clone = DamarisConfig.from_xml(config.to_xml())
        assert clone.buffer_size == 32 * MiB
        assert clone.layout_of("my_variable") == config.layout_of("my_variable")
        assert clone.action_for("my_event") == config.action_for("my_event")

    def test_from_file(self, tmp_path):
        path = tmp_path / "conf.xml"
        path.write_text(PAPER_XML)
        config = DamarisConfig.from_file(str(path))
        assert "my_variable" in config.variables


class TestBuilder:
    def test_add_and_query(self):
        config = DamarisConfig()
        config.add_layout("grid", "double", (10, 20))
        config.add_variable("pressure", "grid", unit="Pa")
        config.add_event("flush", "persist")
        assert config.layout_of("pressure").nbytes == 10 * 20 * 8
        assert config.variables["pressure"].unit == "Pa"
        assert config.action_for("flush").action == "persist"

    def test_duplicate_layout(self):
        config = DamarisConfig().add_layout("l", "int", (4,))
        with pytest.raises(ConfigurationError):
            config.add_layout("l", "int", (8,))

    def test_duplicate_variable(self):
        config = DamarisConfig().add_layout("l", "int", (4,))
        config.add_variable("v", "l")
        with pytest.raises(ConfigurationError):
            config.add_variable("v", "l")

    def test_duplicate_event(self):
        config = DamarisConfig().add_event("e", "persist")
        with pytest.raises(ConfigurationError):
            config.add_event("e", "persist")

    def test_unknown_variable(self):
        with pytest.raises(UnknownVariableError):
            DamarisConfig().layout_of("nope")

    def test_unknown_event(self):
        with pytest.raises(UnknownEventError):
            DamarisConfig().action_for("nope")

    def test_invalid_scope(self):
        with pytest.raises(ConfigurationError):
            DamarisConfig().add_event("e", "persist", scope="universal")

    def test_bytes_per_iteration(self):
        config = DamarisConfig()
        config.add_layout("l", "float", (100,))
        config.add_variable("a", "l")
        config.add_variable("b", "l")
        assert config.bytes_per_iteration() == 800

    def test_validate_rejects_bad_architecture(self):
        config = DamarisConfig()
        config.buffer_size = 0
        with pytest.raises(ConfigurationError):
            config.validate()
        config.buffer_size = 1024
        config.allocator = "magic"
        with pytest.raises(ConfigurationError):
            config.validate()
        config.allocator = "mutex"
        config.dedicated_cores = 0
        with pytest.raises(ConfigurationError):
            config.validate()
