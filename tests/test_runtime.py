"""Tests for the real threaded Damaris runtime (real files, real codecs)."""

import os
import threading

import numpy as np
import pytest

from repro.core import DamarisConfig
from repro.core.shm import Block
from repro.errors import (
    PluginError,
    ReproError,
    ShmAllocationError,
)
from repro.formats import SHDFReader
from repro.runtime import DamarisRuntime
from repro.runtime.shmem import RuntimeBuffer
from repro.runtime.events import QUEUE_CLOSED, RuntimeQueue
from repro.units import MiB


def make_config(action="persist", allocator="mutex", buffer_mib=32):
    config = DamarisConfig()
    config.add_layout("grid", "float", (16, 16, 8))
    config.add_variable("theta", "grid")
    config.add_variable("qv", "grid")
    config.add_event("end_iteration", action)
    config.buffer_size = buffer_mib * MiB
    config.allocator = allocator
    return config


def field(seed=0):
    """A smooth, partially-zero field (CM1-like compressibility)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, np.pi, 16, dtype=np.float32)
    base = np.sin(x)[:, None, None] * np.cos(x)[None, :, None]
    out = (base * np.ones((16, 16, 8), dtype=np.float32)).copy()
    out[np.abs(out) < 0.3] = 0.0
    out[:4, :4] += rng.normal(0, 0.01, (4, 4, 8)).astype(np.float32)
    return out


class TestRuntimeBuffer:
    def test_allocate_write_read_roundtrip(self):
        buffer = RuntimeBuffer(1 * MiB)
        data = np.arange(64, dtype=np.float32)
        block = buffer.allocate(data.nbytes)
        buffer.write_array(block, data)
        back = buffer.read_array(block, np.float32, (64,))
        assert np.array_equal(back, data)

    def test_view_is_live(self):
        buffer = RuntimeBuffer(1 * MiB)
        block = buffer.allocate(16)
        view = buffer.view(block, np.float32, (4,))
        view[:] = 7.0
        assert np.all(buffer.read_array(block, np.float32, (4,)) == 7.0)

    def test_wrong_size_rejected(self):
        buffer = RuntimeBuffer(1 * MiB)
        block = buffer.allocate(16)
        with pytest.raises(ShmAllocationError):
            buffer.write_array(block, np.zeros(100, dtype=np.float64))

    def test_blocking_allocation_times_out(self):
        buffer = RuntimeBuffer(64)
        buffer.allocate(64)
        with pytest.raises(ShmAllocationError):
            buffer.allocate(64, timeout=0.05)

    def test_blocked_allocation_wakes_on_free(self):
        buffer = RuntimeBuffer(64)
        first = buffer.allocate(64)
        got = []

        def blocked():
            got.append(buffer.allocate(64, timeout=5.0))

        thread = threading.Thread(target=blocked)
        thread.start()
        buffer.free(first)
        thread.join(timeout=5.0)
        assert got and got[0].size == 64
        assert buffer.stalls >= 1


class TestRuntimeQueue:
    def test_fifo(self):
        queue = RuntimeQueue()
        queue.put("a")
        queue.put("b")
        assert queue.get() == "a"
        assert queue.get() == "b"

    def test_get_timeout_returns_none(self):
        assert RuntimeQueue().get(timeout=0.05) is None

    def test_closed_queue_drains_then_reports_closed(self):
        queue = RuntimeQueue()
        queue.put("x")
        queue.close()
        assert queue.get(timeout=0.1) == "x"
        assert queue.get(timeout=0.1) is QUEUE_CLOSED


class TestRuntimeEndToEnd:
    def test_persist_roundtrip(self, tmp_path):
        config = make_config()
        runtime = DamarisRuntime(config, output_dir=str(tmp_path),
                                 nodes=2, clients_per_node=2)
        data = {c.rank: field(c.rank) for c in runtime.clients}
        for iteration in range(2):
            for client in runtime.clients:
                client.df_write("theta", iteration, data[client.rank])
                client.df_signal("end_iteration", iteration)
        runtime.shutdown()

        files = runtime.output_files()
        assert len(files) == 4  # 2 nodes x 2 iterations
        with SHDFReader(files[0]) as reader:
            names = reader.datasets
            assert len(names) == 2  # 2 clients on the node
            array = reader.read_dataset(names[0])
            source = reader.dataset_attrs(names[0])["source"]
            assert np.allclose(array, data[source])

    def test_compression_reduces_stored_bytes(self, tmp_path):
        config = make_config(action="compress")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=2) as runtime:
            for client in runtime.clients:
                client.df_write("theta", 0, field(1))
                client.df_signal("end_iteration", 0)
        totals = runtime.total_bytes()
        assert totals["stored"] < totals["raw"]
        assert runtime.compression_ratio_percent() > 100.0

    def test_precision16_pipeline(self, tmp_path):
        config = make_config(action="compress16")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=1) as runtime:
            runtime.clients[0].df_write("theta", 0, field(2))
            runtime.clients[0].df_signal("end_iteration", 0)
        assert runtime.compression_ratio_percent() > 300.0
        with SHDFReader(runtime.output_files()[0]) as reader:
            back = reader.read_dataset(reader.datasets[0])
            assert np.allclose(back, field(2), atol=5e-3)

    def test_zero_copy_dc_alloc_commit(self, tmp_path):
        config = make_config()
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=1) as runtime:
            client = runtime.clients[0]
            window = client.dc_alloc("theta", 0)
            window[:] = 3.25  # the simulation computes in place
            client.dc_commit("theta", 0)
            client.df_signal("end_iteration", 0)
        with SHDFReader(runtime.output_files()[0]) as reader:
            assert np.all(reader.read_dataset(reader.datasets[0]) == 3.25)

    def test_dc_commit_without_alloc(self, tmp_path):
        config = make_config()
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            with pytest.raises(ShmAllocationError):
                runtime.clients[0].dc_commit("theta", 0)

    def test_finalize_with_pending_alloc_raises(self, tmp_path):
        config = make_config()
        runtime = DamarisRuntime(config, output_dir=str(tmp_path))
        runtime.clients[0].dc_alloc("theta", 0)
        with pytest.raises(ReproError):
            runtime.clients[0].df_finalize()
        runtime.clients[0].dc_commit("theta", 0)
        runtime.shutdown()

    def test_layout_mismatch_rejected(self, tmp_path):
        config = make_config()
        with DamarisRuntime(config, output_dir=str(tmp_path)) as runtime:
            with pytest.raises(ReproError):
                runtime.clients[0].df_write(
                    "theta", 0, np.zeros((4, 4), dtype=np.float32))

    def test_statistics_action(self, tmp_path):
        config = make_config(action="statistics")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=1) as runtime:
            runtime.clients[0].df_write("theta", 0, field(3))
            runtime.clients[0].df_signal("end_iteration", 0)
        server = runtime.servers[0]
        assert server.last_statistics
        (low, high, mean), = server.last_statistics.values()
        assert low <= mean <= high

    def test_custom_action(self, tmp_path):
        seen = []

        def my_action(context):
            for entry in context.entries:
                seen.append((entry.name, float(context.array_of(entry).sum())))
            context.server._release(context.event.iteration)

        config = make_config()
        config.add_event("my_event", "do_something")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=1,
                            actions={"do_something": my_action}) as runtime:
            runtime.clients[0].df_write("theta", 0,
                                        np.ones((16, 16, 8), np.float32))
            runtime.clients[0].df_signal("my_event", 0)
        assert seen == [("theta", 16.0 * 16 * 8)]

    def test_unknown_action_surfaces(self, tmp_path):
        config = make_config()
        config.add_event("bad", "no_such_action")
        runtime = DamarisRuntime(config, output_dir=str(tmp_path),
                                 nodes=1, clients_per_node=1)
        runtime.clients[0].df_write("theta", 0, field(0))
        runtime.clients[0].df_signal("bad", 0)
        with pytest.raises(PluginError):
            runtime.shutdown()

    def test_partitioned_allocator(self, tmp_path):
        config = make_config(allocator="partitioned")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=2) as runtime:
            for client in runtime.clients:
                client.df_write("theta", 0, field(client.rank))
                client.df_signal("end_iteration", 0)
        assert len(runtime.output_files()) == 1

    def test_overlap_accounting(self, tmp_path):
        """Client-visible write time must be far below the server's."""
        config = make_config(action="compress")
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=2) as runtime:
            for iteration in range(3):
                for client in runtime.clients:
                    client.df_write("theta", iteration, field(iteration))
                    client.df_write("qv", iteration, field(iteration + 7))
                    client.df_signal("end_iteration", iteration)
        assert runtime.server_write_seconds() > 0
        assert runtime.client_write_seconds() < \
            5 * runtime.server_write_seconds()

    def test_flush_on_shutdown_without_signal(self, tmp_path):
        """Buffered but unsignalled data is flushed at finalize."""
        config = make_config()
        runtime = DamarisRuntime(config, output_dir=str(tmp_path),
                                 nodes=1, clients_per_node=1)
        runtime.clients[0].df_write("theta", 5, field(4))
        runtime.shutdown()
        assert len(runtime.output_files()) == 1
        assert "iter000005" in runtime.output_files()[0]
