"""Tests for the shared-memory allocators (mutex + lock-free partitioned)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Block,
    MutexAllocator,
    PartitionedAllocator,
    SharedMemorySegment,
)
from repro.errors import ShmAllocationError


class TestMutexAllocator:
    def test_first_fit(self):
        alloc = MutexAllocator(100)
        a = alloc.allocate(40)
        b = alloc.allocate(40)
        assert (a.offset, a.size) == (0, 40)
        assert (b.offset, b.size) == (40, 40)
        assert alloc.used_bytes == 80
        assert alloc.free_bytes == 20

    def test_exhaustion_returns_none(self):
        alloc = MutexAllocator(100)
        assert alloc.allocate(60) is not None
        assert alloc.allocate(60) is None

    def test_oversized_request_raises(self):
        with pytest.raises(ShmAllocationError):
            MutexAllocator(100).allocate(101)

    def test_free_and_reuse(self):
        alloc = MutexAllocator(100)
        a = alloc.allocate(60)
        assert alloc.allocate(60) is None
        alloc.free(a)
        assert alloc.allocate(60) is not None

    def test_coalescing_recovers_full_extent(self):
        alloc = MutexAllocator(90)
        blocks = [alloc.allocate(30) for _ in range(3)]
        # Free out of order; extents must coalesce back to one 90-byte run.
        alloc.free(blocks[1])
        alloc.free(blocks[0])
        alloc.free(blocks[2])
        assert alloc.largest_free_extent == 90

    def test_fragmentation_blocks_large_requests(self):
        alloc = MutexAllocator(90)
        blocks = [alloc.allocate(30) for _ in range(3)]
        alloc.free(blocks[1])  # hole in the middle
        assert alloc.allocate(60) is None  # 60 free but not contiguous
        assert alloc.allocate(30) is not None

    def test_double_free_detected(self):
        alloc = MutexAllocator(100)
        a = alloc.allocate(50)
        alloc.free(a)
        with pytest.raises(ShmAllocationError):
            alloc.free(a)

    def test_invalid_requests(self):
        with pytest.raises(ShmAllocationError):
            MutexAllocator(0)
        with pytest.raises(ShmAllocationError):
            MutexAllocator(10).allocate(0)

    @given(st.lists(st.integers(min_value=1, max_value=50),
                    min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_alloc_free_all_restores_capacity(self, sizes):
        """Property: allocate any feasible sequence, free everything in
        interleaved order, and the allocator returns to pristine state."""
        alloc = MutexAllocator(512)
        held = []
        for i, size in enumerate(sizes):
            block = alloc.allocate(size)
            if block is not None:
                held.append(block)
            if i % 3 == 2 and held:
                alloc.free(held.pop(len(held) // 2))
        for block in held:
            alloc.free(block)
        assert alloc.used_bytes == 0
        assert alloc.largest_free_extent == 512

    @given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_no_overlapping_blocks(self, sizes):
        """Property: live blocks never overlap."""
        alloc = MutexAllocator(256)
        held = []
        for size in sizes:
            block = alloc.allocate(size)
            if block is not None:
                held.append(block)
        intervals = sorted((b.offset, b.end) for b in held)
        for (_, end_a), (start_b, _) in zip(intervals, intervals[1:]):
            assert end_a <= start_b


class TestPartitionedAllocator:
    def test_regions_are_disjoint(self):
        alloc = PartitionedAllocator(120, nclients=3)
        regions = [alloc.region_of(c) for c in range(3)]
        assert [r.offset for r in regions] == [0, 40, 80]
        assert all(r.size == 40 for r in regions)

    def test_allocation_stays_in_region(self):
        alloc = PartitionedAllocator(120, nclients=3)
        block = alloc.allocate(30, client=1)
        assert 40 <= block.offset and block.end <= 80

    def test_bump_allocation_is_sequential(self):
        alloc = PartitionedAllocator(100, nclients=2)
        a = alloc.allocate(20, client=0)
        b = alloc.allocate(20, client=0)
        c = alloc.allocate(10, client=0)
        assert b.offset == a.end
        assert c.offset == b.end
        assert alloc.allocate(20, client=0) is None  # region (50) exhausted

    def test_cursor_rewinds_only_when_arena_empty(self):
        alloc = PartitionedAllocator(100, nclients=2)
        a = alloc.allocate(25, client=0)
        b = alloc.allocate(25, client=0)
        alloc.free(a, client=0)
        # One block still live: the bump cursor cannot rewind.
        assert alloc.allocate(25, client=0) is None
        alloc.free(b, client=0)
        # Arena empty: rewound, full region available again.
        assert alloc.allocate(50, client=0) is not None

    def test_reset_after_all_freed(self):
        alloc = PartitionedAllocator(100, nclients=2)
        blocks = [alloc.allocate(25, client=1) for _ in range(2)]
        assert alloc.allocate(25, client=1) is None
        for block in blocks:
            alloc.free(block, client=1)
        assert alloc.allocate(25, client=1) is not None

    def test_client_isolation(self):
        alloc = PartitionedAllocator(100, nclients=2)
        # Exhaust client 0's region; client 1 is unaffected.
        alloc.allocate(50, client=0)
        assert alloc.allocate(1, client=0) is None
        assert alloc.allocate(50, client=1) is not None

    def test_oversized_for_region_raises(self):
        alloc = PartitionedAllocator(100, nclients=2)
        with pytest.raises(ShmAllocationError):
            alloc.allocate(51, client=0)

    def test_invalid_client(self):
        alloc = PartitionedAllocator(100, nclients=2)
        with pytest.raises(ShmAllocationError):
            alloc.allocate(10, client=2)
        with pytest.raises(ShmAllocationError):
            alloc.free(Block(0, 10), client=5)

    def test_free_without_allocation_raises(self):
        alloc = PartitionedAllocator(100, nclients=1)
        with pytest.raises(ShmAllocationError):
            alloc.free(Block(0, 10), client=0)

    def test_too_many_clients_for_capacity(self):
        with pytest.raises(ShmAllocationError):
            PartitionedAllocator(3, nclients=10)


class TestSharedMemorySegment:
    def test_selects_allocator(self):
        assert SharedMemorySegment(100, "mutex").allocator.name == "mutex"
        assert SharedMemorySegment(100, "partitioned", nclients=2) \
            .allocator.name == "partitioned"

    def test_unknown_allocator(self):
        with pytest.raises(ShmAllocationError):
            SharedMemorySegment(100, "quantum")

    def test_counters(self):
        segment = SharedMemorySegment(100, "mutex")
        block = segment.allocate(80)
        assert segment.bytes_reserved == 80
        assert segment.used_bytes == 80
        assert segment.allocate(80) is None
        assert segment.stalls == 1
        segment.free(block)
        assert segment.used_bytes == 0
