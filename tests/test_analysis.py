"""Tests for jitter statistics, the V-A model and scalability factors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    breakeven_io_fraction,
    dedication_benefit,
    dedication_pays_off,
    jitter_stats,
    scalability_factor,
)
from repro.errors import ReproError


class TestJitterStats:
    def test_basic_statistics(self):
        stats = jitter_stats([1.0, 2.0, 3.0, 10.0])
        assert stats.mean == 4.0
        assert stats.maximum == 10.0
        assert stats.minimum == 1.0
        assert stats.spread == 9.0
        assert stats.count == 4
        assert stats.cov > 0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            jitter_stats([])

    def test_constant_sample(self):
        stats = jitter_stats([0.2] * 50)
        assert stats.spread == 0.0
        assert stats.cov == pytest.approx(0.0, abs=1e-12)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e4),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_invariants(self, sample):
        stats = jitter_stats(sample)
        eps = 1e-9 * max(abs(stats.maximum), 1.0)  # fp summation slack
        assert stats.minimum - eps <= stats.mean <= stats.maximum + eps
        assert stats.minimum - eps <= stats.p95 <= stats.maximum + eps
        assert stats.spread >= 0


class TestBreakevenModel:
    def test_paper_value_for_24_cores(self):
        # "with 24 cores p = 4.35 %"
        assert breakeven_io_fraction(24) == pytest.approx(4.35, abs=0.01)

    def test_needs_two_cores(self):
        with pytest.raises(ReproError):
            breakeven_io_fraction(1)

    def test_more_cores_lower_breakeven(self):
        values = [breakeven_io_fraction(n) for n in (4, 8, 16, 32)]
        assert values == sorted(values, reverse=True)

    def test_pays_off_above_breakeven(self):
        n = 24
        breakeven = breakeven_io_fraction(n)
        assert dedication_pays_off(n, breakeven + 0.5)
        assert not dedication_pays_off(n, breakeven - 0.5)

    def test_5_percent_rule(self):
        # At the common 5 % I/O budget, 24-core nodes benefit...
        assert dedication_pays_off(24, 5.0)
        # ... but 12-core nodes (breakeven 9.1 %) do not.
        assert not dedication_pays_off(12, 5.0)

    def test_paper_worst_case_is_unsatisfiable(self):
        # With W_ded = N * W_std (the paper's stated worst case) the two
        # sides of the max() cannot both be beaten — see model docstring.
        n = 24
        for io in (2.0, 4.35, 5.0, 10.0, 50.0):
            assert not dedication_pays_off(n, io, write_dilation=n)

    def test_moderate_write_dilation_still_pays(self):
        # 12-core nodes above their 9.1 % breakeven, with the dedicated
        # core writing 2x slower than a compute core would.
        assert dedication_pays_off(12, 10.0, write_dilation=2.0)

    def test_benefit_speedup(self):
        benefit = dedication_benefit(24, compute_seconds=100.0,
                                     write_seconds=10.0)
        assert benefit.pays_off
        assert benefit.speedup > 1.0
        assert benefit.standard_cycle == 110.0

    def test_benefit_validation(self):
        with pytest.raises(ReproError):
            dedication_benefit(24, compute_seconds=0, write_seconds=1)
        with pytest.raises(ReproError):
            dedication_benefit(1, compute_seconds=1, write_seconds=1)

    @given(n=st.integers(min_value=2, max_value=128),
           io=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=60, deadline=None)
    def test_model_consistency(self, n, io):
        """dedication_pays_off must agree with the closed-form breakeven
        (strictly beyond a small tolerance around the threshold)."""
        breakeven = breakeven_io_fraction(n)
        if io > breakeven * 1.001:
            assert dedication_pays_off(n, io)
        elif io < breakeven * 0.999:
            assert not dedication_pays_off(n, io)


class TestScalabilityFactor:
    def test_perfect_scaling(self):
        # T_N == baseline time -> S == N.
        assert scalability_factor(9216, 206.0, 206.0) == 9216

    def test_degraded_scaling(self):
        assert scalability_factor(1000, 100.0, 200.0) == 500.0

    def test_validation(self):
        with pytest.raises(ReproError):
            scalability_factor(100, 0.0, 10.0)
        with pytest.raises(ReproError):
            scalability_factor(0, 10.0, 10.0)
