"""Unit tests for generator processes, interrupts and composite conditions."""

import pytest

from repro.des import AllOf, AnyOf, Interrupt, Simulator
from repro.errors import ProcessKilled, SimulationError


class TestProcessBasics:
    def test_requires_generator(self):
        with pytest.raises(SimulationError):
            Simulator().process(lambda: None)

    def test_return_value_becomes_event_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return "result"

        assert sim.run_until_complete(sim.process(proc())) == "result"

    def test_processes_wait_on_each_other(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(2.0)
            return "child-value"

        def parent():
            value = yield sim.process(child())
            log.append((sim.now, value))

        sim.process(parent())
        sim.run()
        assert log == [(2.0, "child-value")]

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def bad():
            yield 42

        proc = sim.process(bad())
        proc.defuse()
        sim.run()
        assert not proc.ok
        assert isinstance(proc.exception, SimulationError)

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise KeyError("inner")

        sim.process(bad())
        with pytest.raises(KeyError):
            sim.run()

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()
        caught = []

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("inner")

        def waiter():
            try:
                yield sim.process(bad())
            except ValueError as exc:
                caught.append(exc)

        sim.process(waiter())
        sim.run()
        assert len(caught) == 1

    def test_yield_already_processed_event(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")
        log = []

        def late_waiter():
            yield sim.timeout(5.0)
            value = yield done
            log.append((sim.now, value))

        sim.process(late_waiter())
        sim.run()
        assert log == [(5.0, "early")]

    def test_is_alive(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_wakes_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        victim = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(3.0)
            victim.interrupt(cause="wake up")

        sim.process(interrupter())
        sim.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_terminated_raises(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_can_continue_after_interrupt(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            log.append(sim.now)

        victim = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(2.0)
            victim.interrupt()

        sim.process(interrupter())
        sim.run()
        assert log == [3.0]


class TestKill:
    def test_kill_stops_execution(self):
        sim = Simulator()
        log = []

        def sleeper():
            yield sim.timeout(100.0)
            log.append("should never run")

        victim = sim.process(sleeper())

        def killer():
            yield sim.timeout(1.0)
            victim.kill()

        sim.process(killer())
        sim.run()
        assert log == []
        assert not victim.is_alive
        assert isinstance(victim.exception, ProcessKilled)

    def test_kill_twice_is_idempotent(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100.0)

        victim = sim.process(sleeper())

        def killer():
            yield sim.timeout(1.0)
            victim.kill()
            victim.kill()

        sim.process(killer())
        sim.run()


class TestConditions:
    def test_anyof_fires_on_first(self):
        sim = Simulator()
        seen = []

        def waiter():
            result = yield AnyOf(sim, [sim.timeout(5.0, "slow"),
                                       sim.timeout(1.0, "fast")])
            seen.append((sim.now, sorted(result.values())))

        sim.process(waiter())
        sim.run()
        assert seen == [(1.0, ["fast"])]

    def test_allof_waits_for_all(self):
        sim = Simulator()
        seen = []

        def waiter():
            result = yield AllOf(sim, [sim.timeout(5.0, "slow"),
                                       sim.timeout(1.0, "fast")])
            seen.append((sim.now, sorted(result.values())))

        sim.process(waiter())
        sim.run()
        assert seen == [(5.0, ["fast", "slow"])]

    def test_empty_allof_fires_immediately(self):
        sim = Simulator()
        seen = []

        def waiter():
            result = yield AllOf(sim, [])
            seen.append((sim.now, result))

        sim.process(waiter())
        sim.run()
        assert seen == [(0.0, {})]

    def test_condition_propagates_child_failure(self):
        sim = Simulator()
        bad = sim.event()
        bad.fail(RuntimeError("child died"))
        bad.defuse()  # creator hands the failure to the condition
        caught = []

        def waiter():
            try:
                yield AllOf(sim, [bad, sim.timeout(1.0)])
            except RuntimeError as exc:
                caught.append(exc)

        sim.process(waiter())
        sim.run()
        assert len(caught) == 1

    def test_allof_many_events(self):
        sim = Simulator()
        seen = []

        def waiter():
            yield AllOf(sim, [sim.timeout(float(i)) for i in range(50)])
            seen.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert seen == [49.0]
