"""Tests for the content-addressed sweep-result cache.

Covers the correctness contract from the cache design: a hit returns
the stored object, any argument change misses, a model-fingerprint
change invalidates, a truncated or corrupted entry degrades to a miss
(never a crash, never a wrong value), and two processes racing on the
same key both leave a valid store behind.
"""

import hashlib
import multiprocessing
import os

import numpy as np
import pytest

from repro.cache import (
    ResultCache,
    UncacheableArgument,
    cache_from_env,
    canonical_blob,
    default_cache_dir,
    model_fingerprint,
    task_key,
)
from repro.cache.store import _MAGIC


def _fn(x, y=1):
    return x + y


class TestCanonicalBlob:
    def test_dict_order_insensitive(self):
        assert canonical_blob({"a": 1, "b": 2}) == \
            canonical_blob({"b": 2, "a": 1})

    def test_list_and_tuple_equivalent(self):
        assert canonical_blob([1, 2, 3]) == canonical_blob((1, 2, 3))

    def test_int_float_distinct(self):
        assert canonical_blob(1) != canonical_blob(1.0)

    def test_bool_not_confused_with_int(self):
        assert canonical_blob(True) != canonical_blob(1)

    def test_nested_change_changes_blob(self):
        a = {"spec": {"ncores": 576, "strategy": {"kind": "fpp"}}}
        b = {"spec": {"ncores": 576, "strategy": {"kind": "damaris"}}}
        assert canonical_blob(a) != canonical_blob(b)

    def test_numpy_scalar_matches_python(self):
        assert canonical_blob(np.int64(7)) == canonical_blob(7)

    def test_numpy_array_roundtrip(self):
        arr = np.arange(6, dtype=float).reshape(2, 3)
        assert canonical_blob(arr) == canonical_blob(arr.copy())
        assert canonical_blob(arr) != canonical_blob(arr.T)

    def test_unknown_type_raises(self):
        with pytest.raises(UncacheableArgument):
            canonical_blob(object())

    def test_string_prefix_injection(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert canonical_blob(("ab", "c")) != canonical_blob(("a", "bc"))


class TestTaskKey:
    def test_stable(self):
        assert task_key(_fn, (1,), {"y": 2}, "fp") == \
            task_key(_fn, (1,), {"y": 2}, "fp")

    def test_arg_change_misses(self):
        base = task_key(_fn, (1,), {"y": 2}, "fp")
        assert task_key(_fn, (2,), {"y": 2}, "fp") != base
        assert task_key(_fn, (1,), {"y": 3}, "fp") != base
        assert task_key(_fn, (1,), {}, "fp") != base

    def test_fingerprint_change_misses(self):
        assert task_key(_fn, (1,), {}, "fp-a") != \
            task_key(_fn, (1,), {}, "fp-b")

    def test_context_change_misses(self):
        assert task_key(_fn, (1,), {}, "fp", context={"fast": True}) != \
            task_key(_fn, (1,), {}, "fp", context={"fast": False})

    def test_function_identity_in_key(self):
        assert task_key(_fn, (1,), {}, "fp") != \
            task_key(canonical_blob, (1,), {}, "fp")


class TestModelFingerprint:
    def _tree(self, tmp_path, name, content):
        root = tmp_path / name
        root.mkdir()
        (root / "mod.py").write_text(content)
        return str(root)

    def test_stable_and_memoised(self, tmp_path):
        root = self._tree(tmp_path, "a", "X = 1\n")
        assert model_fingerprint(root) == model_fingerprint(root)

    def test_source_change_changes_fingerprint(self, tmp_path):
        a = self._tree(tmp_path, "a", "X = 1\n")
        b = self._tree(tmp_path, "b", "X = 2\n")
        assert model_fingerprint(a) != model_fingerprint(b)

    def test_refresh_sees_edit(self, tmp_path):
        root = self._tree(tmp_path, "a", "X = 1\n")
        before = model_fingerprint(root)
        (tmp_path / "a" / "mod.py").write_text("X = 99\n")
        assert model_fingerprint(root) == before  # memoised
        assert model_fingerprint(root, refresh=True) != before

    def test_non_python_files_ignored(self, tmp_path):
        root = self._tree(tmp_path, "a", "X = 1\n")
        before = model_fingerprint(root, refresh=True)
        (tmp_path / "a" / "notes.txt").write_text("irrelevant")
        assert model_fingerprint(root, refresh=True) == before

    def test_default_root_is_repro_package(self):
        fp = model_fingerprint()
        assert isinstance(fp, str) and len(fp) == 40


class TestResultCacheStore:
    def _cache(self, tmp_path, fingerprint="fp", **kwargs):
        return ResultCache(str(tmp_path / "cache"), fingerprint=fingerprint,
                           **kwargs)

    def test_roundtrip_returns_stored_object(self, tmp_path):
        cache = self._cache(tmp_path)
        value = {"rows": np.arange(4.0), "label": "fig2", "n": 42}
        key = cache.key_for(_fn, (1,), {"y": 2})
        cache.put(key, value)
        hit, loaded = cache.get(key)
        assert hit
        assert loaded["label"] == "fig2" and loaded["n"] == 42
        np.testing.assert_array_equal(loaded["rows"], value["rows"])

    def test_absent_key_misses(self, tmp_path):
        cache = self._cache(tmp_path)
        hit, value = cache.get("0" * 40)
        assert not hit and value is None
        assert cache.stats.misses == 1

    def test_arg_change_changes_key(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.key_for(_fn, (1,), {}) != cache.key_for(_fn, (2,), {})

    def test_fingerprint_change_invalidates(self, tmp_path):
        old = self._cache(tmp_path, fingerprint="model-v1")
        key = old.key_for(_fn, (1,), {})
        old.put(key, "stale-result")
        new = self._cache(tmp_path, fingerprint="model-v2")
        new_key = new.key_for(_fn, (1,), {})
        assert new_key != key
        hit, _value = new.get(new_key)
        assert not hit  # the stale entry is structurally unreachable

    def test_uncacheable_args_yield_no_key(self, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.key_for(_fn, (object(),), {}) is None

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        cache.put(key, list(range(1000)))
        path = cache.entry_path(key)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        hit, value = cache.get(key)
        assert not hit and value is None
        assert cache.stats.corrupt == 1
        assert not os.path.exists(path)  # removed so a re-put lands clean

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        path = cache.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"not a cache entry at all")
        hit, _value = cache.get(key)
        assert not hit
        assert cache.stats.corrupt == 1

    def test_valid_digest_bad_pickle_is_a_miss(self, tmp_path):
        # A correctly framed entry whose body is not a pickle: the
        # checksum passes, unpickling must still degrade to a miss.
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        body = b"\x80\x04 definitely not a valid pickle stream"
        digest = hashlib.blake2b(body, digest_size=32).digest()
        path = cache.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(_MAGIC + digest + body)
        hit, _value = cache.get(key)
        assert not hit
        assert cache.stats.corrupt == 1

    def test_bitflip_detected_by_digest(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        cache.put(key, "payload")
        path = cache.entry_path(key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        hit, _value = cache.get(key)
        assert not hit

    def test_verify_reports_corruption(self, tmp_path):
        cache = self._cache(tmp_path)
        good = cache.key_for(_fn, (1,), {})
        bad = cache.key_for(_fn, (2,), {})
        cache.put(good, "ok")
        cache.put(bad, "soon corrupt")
        with open(cache.entry_path(bad), "ab") as fh:
            fh.write(b"trailing garbage")
        assert cache.verify() == [bad]

    def test_clear_removes_everything(self, tmp_path):
        cache = self._cache(tmp_path)
        for i in range(3):
            cache.put(cache.key_for(_fn, (i,), {}), i)
        assert cache.clear() == 3
        assert list(cache.entries()) == []
        assert cache.total_bytes() == 0

    def test_lru_eviction_keeps_recent(self, tmp_path):
        cache = self._cache(tmp_path)
        keys = [cache.key_for(_fn, (i,), {}) for i in range(4)]
        for i, key in enumerate(keys):
            cache.put(key, b"x" * 512)
            # Deterministic, well-separated mtimes (filesystem clock
            # granularity is too coarse for a tight loop).
            os.utime(cache.entry_path(key), (1000.0 + i, 1000.0 + i))
        entry_size = os.path.getsize(cache.entry_path(keys[0]))
        cache.evict(max_bytes=2 * entry_size)
        survivors = {info.key for info in cache.entries()}
        assert survivors == {keys[2], keys[3]}
        assert cache.stats.evicted == 2

    def test_prune_stale_drops_old_model_entries(self, tmp_path):
        old = self._cache(tmp_path, fingerprint="model-v1")
        old.put(old.key_for(_fn, (1,), {}), "old")
        old.flush()
        new = self._cache(tmp_path, fingerprint="model-v2")
        fresh_key = new.key_for(_fn, (1,), {})
        new.put(fresh_key, "new")
        new.flush()
        assert new.prune_stale() == 1
        survivors = {info.key for info in new.entries()}
        assert survivors == {fresh_key}

    def test_flush_accumulates_without_double_counting(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        cache.get(key)      # miss
        cache.put(key, 1)   # write
        cache.flush()
        cache.flush()       # repeated flush must not double the totals
        cache.get(key)      # hit
        cache.flush()
        totals = cache.totals()
        assert totals["misses"] == 1
        assert totals["writes"] == 1
        assert totals["hits"] == 1
        assert cache.last_run() == cache.stats.as_dict()

    def test_index_corruption_tolerated(self, tmp_path):
        cache = self._cache(tmp_path)
        key = cache.key_for(_fn, (1,), {})
        cache.put(key, "value")
        cache.flush()
        with open(cache.index_path, "w") as fh:
            fh.write("{not json")
        hit, value = cache.get(key)  # entries never depend on the index
        assert hit and value == "value"
        assert cache.totals() == {k: 0 for k in cache.totals()}


def _race_writer(root, key, value, barrier, rounds):
    cache = ResultCache(root, fingerprint="race-fp")
    barrier.wait()
    for _ in range(rounds):
        cache.put(key, value)


class TestConcurrentWriters:
    def test_same_key_race_is_safe(self, tmp_path):
        """Two processes hammering the same key concurrently must leave
        one complete, checksum-valid entry (last writer wins)."""
        root = str(tmp_path / "cache")
        cache = ResultCache(root, fingerprint="race-fp")
        key = cache.key_for(_fn, (1,), {})
        payload = {"arr": np.arange(2048.0)}
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_race_writer,
                        args=(root, key, payload, barrier, 25))
            for _ in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        hit, value = cache.get(key)
        assert hit
        np.testing.assert_array_equal(value["arr"], payload["arr"])
        assert cache.verify() == []
        # No temp-file debris left behind by either writer.
        shard = os.path.dirname(cache.entry_path(key))
        assert [f for f in os.listdir(shard) if f.endswith(".tmp")] == []


class TestEnvWiring:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_from_env() is None

    def test_enabled_values(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        for raw in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_CACHE", raw)
            cache = cache_from_env()
            assert isinstance(cache, ResultCache)
            assert cache.root == str(tmp_path)
        for raw in ("0", "false", "off", ""):
            monkeypatch.setenv("REPRO_CACHE", raw)
            assert cache_from_env() is None

    def test_default_dir_honours_xdg(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_cache_dir() == "/tmp/xdg/repro/sweeps"


class TestCachectlCLI:
    def _seed(self, tmp_path):
        root = str(tmp_path / "store")
        cache = ResultCache(root)  # real model fingerprint, like the CLI
        for i in range(3):
            cache.put(cache.key_for(_fn, (i,), {}), {"result": i},
                      meta={"fn": "tests._fn", "label": f"t{i}"})
        cache.flush()
        return root, cache

    def _run(self, *argv):
        from repro.tools import cachectl

        return cachectl.main(list(argv))

    def test_stats_and_ls(self, tmp_path, capsys):
        root, _cache = self._seed(tmp_path)
        assert self._run("--cache-dir", root, "stats") == 0
        out = capsys.readouterr().out
        assert "entries:          3" in out
        assert self._run("--cache-dir", root, "ls") == 0
        out = capsys.readouterr().out
        assert out.count("tests._fn") == 3

    def test_verify_clean_then_corrupt(self, tmp_path, capsys):
        root, cache = self._seed(tmp_path)
        assert self._run("--cache-dir", root, "verify") == 0
        key = cache.key_for(_fn, (0,), {})
        with open(cache.entry_path(key), "ab") as fh:
            fh.write(b"junk")
        assert self._run("--cache-dir", root, "verify") == 1
        err = capsys.readouterr().err
        assert f"CORRUPT {key}" in err

    def test_prune_stale_via_cli(self, tmp_path, capsys):
        root, _cache = self._seed(tmp_path)
        stale = ResultCache(root, fingerprint="some-older-model")
        stale.put(stale.key_for(_fn, ("old",), {}), "old")
        stale.flush()
        assert self._run("--cache-dir", root, "prune", "--stale") == 0
        assert "pruned 1 stale entry" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        root, cache = self._seed(tmp_path)
        assert self._run("--cache-dir", root, "clear") == 0
        assert list(cache.entries()) == []
