"""Randomized cross-validation: compiled kernel and calendar scheduler.

Two bit-identity contracts are asserted here, on seeded storm workloads
(not on single solves only — whole simulations, so any divergence
compounds into visibly different completion times):

- ``REPRO_KERNEL=compiled`` reproduces the numpy water-filling solve
  **bit for bit** (``ndarray.tobytes()`` equality), at
  ``fairness_slack=0`` and at positive slack, under both solvers;
- ``REPRO_SCHEDULER=calendar`` pops events in exactly the same
  ``(time, priority, seq)`` order as the binary heap, so full runs are
  bit-identical.

Plus direct unit tests of the C kernel against its executable Python
specification (:func:`repro.des.kernels.maxmin_class_solve_py`) and of
the calendar queue's ordering/resize behaviour, including the
empty-network and single-flow edge cases the interfaces degenerate on.
"""

import heapq
import math
import random

import numpy as np
import pytest

from repro.des import FlowNetwork, Simulator
from repro.des.kernels import (compiled_kernel, kernel_status,
                               maxmin_class_solve_py, resolve_kernel)
from repro.des.sched import (CalendarScheduler, HeapScheduler,
                             make_scheduler, resolve_scheduler)
from repro.errors import SimulationError

needs_compiled = pytest.mark.skipif(kernel_status() == "unavailable",
                                    reason="no C compiler and no numba")


# --------------------------------------------------------------------- #
# workload builders
# --------------------------------------------------------------------- #
def run_storm(kernel, scheduler, seed, slack=0.0, nflows=400,
              solver="component"):
    """A seeded storm with mixed topology: shared NICs, staggered
    targets, a fusing fabric link, rate-capped and capless flows, and
    staggered arrivals — returns per-flow end times and run invariants
    for bit-comparison."""
    rng = random.Random(seed)
    sim = Simulator(scheduler=scheduler)
    net = FlowNetwork(sim, fairness_slack=slack, kernel=kernel,
                      solver=solver)
    nics = [net.add_capacity(f"nic{i}", 1e9 * (1 + 0.01 * i))
            for i in range(12)]
    tgts = [net.add_capacity(f"tgt{j}", 4.5e7 * (1 + 0.003 * j))
            for j in range(8)]
    fabric = net.add_capacity("fabric", 1e15)
    flows = []

    def start_batch(count):
        for _ in range(count):
            i = rng.randrange(12)
            j = rng.randrange(8)
            if rng.random() < 0.08:
                res, cap = [], 1e6 * (1 + rng.randrange(9))  # capless
            else:
                res = [nics[i], tgts[j]] + ([fabric]
                                            if rng.random() < 0.7 else [])
                cap = (math.inf if rng.random() < 0.5
                       else 1e6 * (1 + rng.randrange(50)))
            flows.append(net.transfer(res, 1e6 * (1 + rng.randrange(20)),
                                      rate_cap=cap))

    start_batch(nflows // 2)
    for wave in range(4):  # staggered arrival waves mid-flight
        sim.call_later(0.5 + 0.7 * wave,
                       lambda n=nflows // 8: start_batch(n))
    sim.run()
    ends = np.array([flow.end_time for flow in flows])
    return {
        "ends": ends.tobytes(),
        "bytes": net.total_bytes_moved,
        "now": sim.now,
        "completed": net.completed_flows,
    }


def random_solve_instance(rng):
    """A raw (flow_class, class_res, class_cap, capacities) instance in
    the interned-table form ``FlowNetwork`` hands to the kernel,
    including unused class ids (interned but absent from this solve)."""
    nres = int(rng.integers(1, 7))
    capacities = rng.uniform(5.0, 2000.0, size=nres)
    nclasses_total = int(rng.integers(1, 12))
    kmax = 4
    class_res = np.full((nclasses_total, kmax), -1, dtype=np.int64)
    class_cap = np.empty(nclasses_total, dtype=np.float64)
    for cid in range(nclasses_total):
        width = int(rng.integers(0, min(3, nres) + 1))  # 0 = capless
        if width:
            picks = np.sort(rng.choice(nres, size=width, replace=False))
            class_res[cid, :width] = picks
        class_cap[cid] = (np.inf if rng.random() < 0.4
                          else float(rng.uniform(1.0, 800.0)))
    nflows = int(rng.integers(0, 60))
    flow_class = np.sort(
        rng.integers(0, nclasses_total, size=nflows).astype(np.int64))
    return flow_class, class_res, class_cap, capacities


# --------------------------------------------------------------------- #
# compiled kernel ≡ numpy solve (whole simulations)
# --------------------------------------------------------------------- #
@needs_compiled
# Tier 1 keeps two storm seeds as the always-on bit-identity gate; the
# remaining seeds ride in the slow tier (`-m slow`).
@pytest.mark.parametrize("slack", [0.0, 0.08])
@pytest.mark.parametrize("solver", ["component", "global"])
@pytest.mark.parametrize("seed", [0, 1] + [
    pytest.param(s, marks=pytest.mark.slow) for s in range(2, 6)])
def test_compiled_kernel_bit_identical_storms(seed, solver, slack):
    expected = run_storm("python", "heap", seed, slack=slack, solver=solver)
    got = run_storm("compiled", "heap", seed, slack=slack, solver=solver)
    assert got == expected


@needs_compiled
def test_compiled_kernel_empty_network():
    sim = Simulator()
    net = FlowNetwork(sim, kernel="compiled")
    sim.run()
    assert sim.now == 0.0 and net.completed_flows == 0


@needs_compiled
def test_compiled_kernel_single_flow():
    expected = run_storm("python", "heap", seed=1, nflows=1)
    got = run_storm("compiled", "heap", seed=1, nflows=1)
    assert got == expected


@needs_compiled
@pytest.mark.parametrize("seed", list(range(5)) + [
    pytest.param(s, marks=pytest.mark.slow) for s in range(5, 25)])
def test_c_kernel_matches_python_spec(seed):
    """The C kernel vs its interpreted specification, bit for bit, on
    raw interned-table instances (empty flow sets, capless classes and
    infinite caps included)."""
    rng = np.random.default_rng(5000 + seed)
    flow_class, class_res, class_cap, capacities = \
        random_solve_instance(rng)
    slack = float(rng.choice([0.0, 0.05]))
    rate_spec = np.empty(flow_class.size, dtype=np.float64)
    used_spec = np.empty(capacities.size, dtype=np.float64)
    maxmin_class_solve_py(flow_class, class_res, class_cap, capacities,
                          slack, rate_spec, used_spec)
    rate_c, used_c = compiled_kernel().solve(
        flow_class, class_res, class_cap, capacities, slack)
    assert rate_c.tobytes() == rate_spec.tobytes()
    assert used_c.tobytes() == used_spec.tobytes()


@needs_compiled
def test_kernel_solves_counted():
    sim = Simulator()
    net = FlowNetwork(sim, kernel="compiled")
    link = net.add_capacity("link", 100.0)
    net.transfer([link], 100.0)
    net.transfer([link], 100.0)
    sim.run()
    stats = net.solver_stats
    assert stats["kernel"] == "compiled"
    assert stats["kernel_solves"] >= 1
    assert stats["kernel_solves"] == stats["full_solves"] \
        + stats["component_solves"]


def test_python_kernel_reports_no_kernel_solves():
    sim = Simulator()
    net = FlowNetwork(sim, kernel="python")
    link = net.add_capacity("link", 100.0)
    net.transfer([link], 100.0)
    sim.run()
    stats = net.solver_stats
    assert stats["kernel"] == "python"
    assert stats["kernel_solves"] == 0


def test_resolve_kernel_env_and_validation(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel(None) == "python"
    monkeypatch.setenv("REPRO_KERNEL", "compiled")
    assert resolve_kernel(None) == "compiled"
    assert resolve_kernel("python") == "python"  # argument beats env
    with pytest.raises(SimulationError):
        resolve_kernel("fortran")


# --------------------------------------------------------------------- #
# calendar scheduler ≡ heap scheduler
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("slack", [0.0, 0.08])
@pytest.mark.parametrize("seed", [0, 1] + [
    pytest.param(s, marks=pytest.mark.slow) for s in range(2, 6)])
def test_calendar_scheduler_bit_identical_storms(seed, slack):
    expected = run_storm("python", "heap", seed, slack=slack)
    got = run_storm("python", "calendar", seed, slack=slack)
    assert got == expected


def test_calendar_scheduler_empty_and_single_event():
    sim = Simulator(scheduler="calendar")
    sim.run()  # empty queue: no-op
    assert sim.now == 0.0
    sim.timeout(1e6)  # lands in the far-heap, needs a window advance
    sim.run()
    assert sim.now == 1e6


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_scheduler_pop_order_randomized(scheduler):
    """Direct queue-level check: pushes with random times/priorities in
    random order pop in exact (time, priority, seq) order."""
    rng = random.Random(42)
    sched = make_scheduler(scheduler)
    items = []
    seq = 0
    watermark = 0.0  # pushes must stay at/after the last popped time
    for _ in range(2000):
        t = watermark + rng.choice(
            [rng.uniform(0, 1e-6), rng.uniform(0, 100.0),
             rng.uniform(1e6, 1e9), math.inf])
        prio = rng.randrange(3)
        seq += 1
        items.append((t, prio, seq))
        sched.push(t, prio, seq, f"payload{seq}")
        # Interleave pops so the window advances mid-stream.
        if rng.random() < 0.3 and len(sched):
            items.remove(min(items))
            watermark = sched.pop()[0]
    popped = []
    while len(sched):
        t, prio, seq, _entry = sched.pop()
        popped.append((t, prio, seq))
    assert popped == sorted(items)
    with pytest.raises(IndexError):
        sched.pop()


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_schedule_into_past_raises(scheduler):
    """Regression: the calendar queue used to clamp a push earlier than
    the last popped time into bucket 0 and silently pop it out of order.
    Both schedulers now reject such pushes identically."""
    sched = make_scheduler(scheduler)
    sched.push(10.0, 1, 0, "a")
    sched.push(20.0, 1, 1, "b")
    assert sched.pop()[0] == 10.0
    with pytest.raises(SimulationError):
        sched.push(5.0, 1, 2, "too late")
    # Pushing AT the watermark stays legal (same-timestamp callbacks).
    sched.push(10.0, 0, 3, "same instant")
    assert [sched.pop()[2] for _ in range(2)] == [3, 1]


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_simulator_call_at_past_raises(scheduler):
    sim = Simulator(scheduler=scheduler)
    sim.timeout(10.0)
    sim.run()
    assert sim.now == 10.0
    with pytest.raises(SimulationError):
        sim.call_at(5.0, lambda: None)


def test_calendar_resizes_and_stats():
    sched = CalendarScheduler()
    fired = []
    sched.on_resize = fired.append
    for seq in range(2000):
        sched.push(float(seq) * 7.3, 1, seq, None)
    while len(sched):
        sched.pop()
    stats = sched.stats
    assert stats["scheduler"] == "calendar"
    assert stats["resizes"] >= 1
    assert stats["migrations"] >= 1
    assert stats["max_pending"] == 2000
    assert fired and fired[-1]["resizes"] == stats["resizes"]


def test_calendar_entries_snapshot_sorted():
    sched = CalendarScheduler()
    for seq, t in enumerate([5.0, 1.0, 1e9, 3.0, math.inf]):
        sched.push(t, 1, seq, None)
    times = [item[0] for item in sched.entries()]
    assert times == sorted(times)
    assert len(sched) == 5


def test_heap_scheduler_stats():
    sched = HeapScheduler()
    sched.push(1.0, 1, 1, None)
    assert sched.stats == {"scheduler": "heap", "pending": 1}
    assert sched.peek_time() == 1.0
    sched.pop()
    assert sched.peek_time() == math.inf


def test_simulator_heap_property_is_sorted_snapshot():
    sim = Simulator(scheduler="calendar")
    sim.call_later(2.0, lambda: None)
    sim.call_later(1.0, lambda: None)
    snapshot = sim._heap
    assert [entry[0] for entry in snapshot] == [1.0, 2.0]
    assert sim.queue_depth == 2


def test_resolve_scheduler_env_and_validation(monkeypatch):
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    assert resolve_scheduler(None) == "calendar"
    monkeypatch.setenv("REPRO_SCHEDULER", "heap")
    assert resolve_scheduler(None) == "heap"
    sim = Simulator()
    assert sim.scheduler == "heap"
    assert isinstance(sim._sched, HeapScheduler)
    with pytest.raises(SimulationError):
        Simulator(scheduler="splay-tree")


def test_scheduler_tracer_records_resizes():
    """A calendar-queue window move surfaces as a ``sched`` trace event
    (the counter tracereport's ``--by sched`` table aggregates)."""
    from repro.observe.tracer import Tracer

    sim = Simulator(scheduler="calendar")
    tracer = Tracer(clock=lambda: sim.now, clock_name="sim")
    sim.tracer = tracer
    for k in range(200):
        sim.call_later(13.7 * k, lambda: None)
    sim.run()
    events = tracer.events_in("sched")
    assert events, "no sched events recorded for a resizing run"
    assert events[-1].attrs["scheduler"] == "calendar"
    assert events[-1].attrs["resizes"] >= 1


def test_heap_fallback_regime_far_heap():
    """Sparse, widely-spaced events keep working (and stay ordered)
    through the far-heap fallback."""
    sim = Simulator(scheduler="calendar")
    seen = []
    for t in (1e12, 3.0, 1e6, 0.5, math.inf and 7e7):
        sim.call_at(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == sorted(seen)
