"""Regression tests for runtime shutdown/timeout semantics.

Three bugs these pin down:

1. a server whose clients compute longer than one queue-poll timeout
   used to treat the poll timeout as a shutdown and exit silently;
2. the post-shutdown flush used to iterate the variable store while
   persisting mutated it, and always wrote raw bytes even when the
   configured action compresses;
3. ``RuntimeQueue.put`` only noticed a close after its full capacity
   wait, and ``RuntimeBuffer.allocate`` restarted its timeout clock on
   every wakeup, so a stream of unhelpful frees could stall it forever.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import DamarisConfig
from repro.errors import RuntimeShutdownError, ShmAllocationError
from repro.formats import SHDFReader
from repro.runtime import DamarisRuntime
from repro.runtime.events import QUEUE_CLOSED, RuntimeQueue
from repro.runtime.server import RuntimeServer
from repro.runtime.shmem import RuntimeBuffer
from repro.units import MiB


def make_config(action="persist"):
    config = DamarisConfig()
    config.add_layout("grid", "float", (16, 16, 8))
    config.add_variable("theta", "grid")
    config.add_event("end_iteration", action)
    config.buffer_size = 8 * MiB
    return config


def field(seed=0):
    """A smooth, partially-zero field (CM1-like compressibility)."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0, np.pi, 16, dtype=np.float32)
    base = np.sin(x)[:, None, None] * np.cos(x)[None, :, None]
    out = (base * np.ones((16, 16, 8), dtype=np.float32)).copy()
    out[np.abs(out) < 0.3] = 0.0
    out[:4, :4] += rng.normal(0, 0.01, (4, 4, 8)).astype(np.float32)
    return out


class TestSlowProducerSurvival:
    def test_server_outlives_long_compute_phases(self, tmp_path):
        """A compute phase longer than the poll timeout is not a shutdown."""
        runtime = DamarisRuntime(make_config(), output_dir=str(tmp_path),
                                 server_poll_timeout=0.05)
        client = runtime.client(0)
        for iteration in range(2):
            # "Compute" for several poll timeouts before producing.
            time.sleep(0.2)
            client.df_write("theta", iteration, field(iteration))
            client.df_signal("end_iteration", iteration)
        runtime.shutdown()
        server = runtime.servers[0]
        assert not server.errors
        assert server.idle_timeouts >= 1
        assert sorted(server.stats.write_seconds) == [0, 1]
        assert len(runtime.output_files()) == 2

    def test_premature_queue_close_is_recorded(self, tmp_path):
        """Closing the queue before clients finalize surfaces an error
        instead of a silent exit."""
        runtime = DamarisRuntime(make_config(), output_dir=str(tmp_path),
                                 server_poll_timeout=0.05)
        server = runtime.servers[0]
        server.queue.close()
        server.join(timeout=5.0)
        assert not server.is_alive()
        assert server.errors
        assert isinstance(server.errors[0], RuntimeShutdownError)
        with pytest.raises(RuntimeShutdownError):
            runtime.raise_server_errors()


class TestShutdownFlush:
    def test_flush_persists_unsignalled_iterations(self, tmp_path):
        """Iterations never signalled still land on disk at shutdown,
        even several of them (the flush snapshots the iteration list
        while persisting pops from the store)."""
        runtime = DamarisRuntime(make_config(), output_dir=str(tmp_path))
        client = runtime.client(0)
        for iteration in range(3):
            client.df_write("theta", iteration, field(iteration))
        runtime.shutdown()
        server = runtime.servers[0]
        assert not server.errors
        assert sorted(server.stats.write_seconds) == [0, 1, 2]
        assert len(runtime.output_files()) == 3

    def test_flush_honours_configured_compression(self, tmp_path):
        """The end-of-run flush uses the configured action's codecs, so
        trailing iterations compress like signalled ones."""
        runtime = DamarisRuntime(make_config(action="compress"),
                                 output_dir=str(tmp_path))
        client = runtime.client(0)
        data = field(3)
        client.df_write("theta", 0, data)
        client.df_signal("end_iteration", 0)   # compressed via the action
        client.df_write("theta", 1, data)      # flushed at shutdown
        runtime.shutdown()
        stats = runtime.servers[0].stats
        assert stats.bytes_out[0] < stats.bytes_in[0]
        # Identical payload → the flushed iteration compresses identically.
        assert stats.bytes_out[1] == stats.bytes_out[0]
        for path in runtime.output_files():
            with SHDFReader(path) as reader:
                name = reader.datasets[0]
                assert np.array_equal(reader.read_dataset(name), data)


class TestDeadlineSemantics:
    def test_put_notices_close_while_waiting(self):
        """A producer blocked on a full queue fails fast on close instead
        of sleeping out its whole timeout."""
        queue = RuntimeQueue(capacity=1)
        queue.put("filler")
        outcome = {}

        def producer():
            started = time.monotonic()
            try:
                queue.put("blocked", timeout=30.0)
                outcome["result"] = "accepted"
            except RuntimeShutdownError:
                outcome["result"] = "shutdown"
            outcome["elapsed"] = time.monotonic() - started

        thread = threading.Thread(target=producer)
        thread.start()
        time.sleep(0.1)
        queue.close()
        thread.join(timeout=5.0)
        assert outcome["result"] == "shutdown"
        assert outcome["elapsed"] < 5.0

    def test_put_timeout_is_a_deadline(self):
        """Consumers that keep the queue full cannot reset put's clock."""
        queue = RuntimeQueue(capacity=1)
        queue.put("filler")
        stop = threading.Event()

        def churn():
            # Repeatedly wake the producer without making room.
            while not stop.is_set():
                with queue._not_full:
                    queue._not_full.notify_all()
                time.sleep(0.01)

        nagger = threading.Thread(target=churn, daemon=True)
        nagger.start()
        started = time.monotonic()
        try:
            with pytest.raises(RuntimeShutdownError):
                queue.put("blocked", timeout=0.2)
            assert time.monotonic() - started < 2.0
        finally:
            stop.set()
            nagger.join(timeout=5.0)

    def test_allocate_timeout_is_a_deadline(self):
        """Frees that never make room cannot postpone the allocation
        timeout forever (the old code re-armed the full timeout on every
        wakeup)."""
        buffer = RuntimeBuffer(64)
        buffer.allocate(64)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                with buffer._freed:
                    buffer._freed.notify_all()
                time.sleep(0.01)

        nagger = threading.Thread(target=churn, daemon=True)
        nagger.start()
        started = time.monotonic()
        try:
            with pytest.raises(ShmAllocationError):
                buffer.allocate(64, timeout=0.2)
            assert time.monotonic() - started < 2.0
        finally:
            stop.set()
            nagger.join(timeout=5.0)

    def test_get_distinguishes_timeout_from_close(self):
        queue = RuntimeQueue()
        assert queue.get(timeout=0.05) is None       # just a timeout
        queue.close()
        assert queue.get(timeout=0.05) is QUEUE_CLOSED


class TestBufferAccounting:
    """Regression: ``stalls`` used to count condition-variable wakeups
    (one blocked allocation could inflate it arbitrarily), ``free`` never
    decremented ``bytes_reserved``, and a timed-out allocation raised
    before recording its ``shm_stall`` span — losing exactly the longest
    stalls from the trace."""

    def test_bytes_reserved_tracks_free(self):
        buffer = RuntimeBuffer(256)
        a = buffer.allocate(64)
        b = buffer.allocate(32)
        assert buffer.bytes_reserved == 96
        assert buffer.bytes_reserved_total == 96
        buffer.free(a)
        assert buffer.bytes_reserved == 32
        buffer.free(b)
        assert buffer.bytes_reserved == 0
        # The cumulative counter never goes down.
        assert buffer.bytes_reserved_total == 96

    def test_stalls_count_blocked_allocations_not_wakeups(self):
        buffer = RuntimeBuffer(64)
        assert buffer.allocate(64) is not None
        assert buffer.stalls == 0  # immediate success is not a stall
        stop = threading.Event()

        def churn():
            # Wake the blocked allocation repeatedly without making room.
            while not stop.is_set():
                with buffer._freed:
                    buffer._freed.notify_all()
                time.sleep(0.01)

        nagger = threading.Thread(target=churn, daemon=True)
        nagger.start()
        try:
            with pytest.raises(ShmAllocationError):
                buffer.allocate(64, timeout=0.2)
        finally:
            stop.set()
            nagger.join(timeout=5.0)
        assert buffer.stalls == 1

    def test_timed_out_stall_is_traced(self):
        from repro.observe.tracer import Tracer
        tracer = Tracer()
        buffer = RuntimeBuffer(64, tracer=tracer)
        block = buffer.allocate(64)
        with pytest.raises(ShmAllocationError):
            buffer.allocate(64, timeout=0.05)
        spans = tracer.spans_in("shm_stall")
        assert len(spans) == 1
        assert spans[0].attrs["timeout"] is True
        assert spans[0].duration >= 0.05
        # A stall that eventually succeeds is tagged timeout=False.
        waiter = threading.Thread(
            target=lambda: buffer.allocate(64, timeout=5.0))
        waiter.start()
        time.sleep(0.1)
        buffer.free(block)
        waiter.join(timeout=5.0)
        spans = tracer.spans_in("shm_stall")
        assert len(spans) == 2
        assert spans[1].attrs["timeout"] is False
