"""The vectorised water-filling solver vs a pure-Python reference.

``reference_maxmin`` is a deliberately naive O(F·R) per-round
implementation of progressive-filling max-min fairness with per-flow
rate caps — the textbook algorithm, no numpy, no equivalence classes.
The property suite asserts that ``FlowNetwork._maxmin_rates`` (which
dispatches between a per-flow solve, a flow-class solve, and the
compiled kernel) matches it at ``fairness_slack=0`` on randomized flow
sets — parametrized over all three solvers and both kernels (the
sharded solver never partitions at zero slack, so it must match the
reference exactly) — and that the
standard max-min invariants hold: capacity conservation, per-flow caps
respected, and work conservation (every flow is limited by its cap or
by a saturated resource).
"""

import math

import numpy as np
import pytest

from repro.des import FlowNetwork, Simulator
from repro.des.kernels import kernel_status

#: Mirrors the freeze-batch epsilon in ``FlowNetwork._maxmin_rates``.
_BATCH = 1.0 + 1e-12

KERNELS = ["python",
           pytest.param("compiled", marks=pytest.mark.skipif(
               kernel_status() == "unavailable",
               reason="no C compiler and no numba"))]


def reference_maxmin(flows, capacities):
    """Progressive-filling max-min with caps, one frozen batch per round.

    ``flows`` is a list of ``(resource_indices, rate_cap)``;
    ``capacities`` a list of resource capacities. Returns the rate list.
    """
    nflows = len(flows)
    rates = [0.0] * nflows
    frozen = [False] * nflows
    cap_rem = [float(c) for c in capacities]

    for _ in range(nflows + len(capacities) + 1):
        unfrozen = [i for i in range(nflows) if not frozen[i]]
        if not unfrozen:
            break
        counts = [0] * len(capacities)
        for i in unfrozen:
            for r in flows[i][0]:
                counts[r] += 1
        candidate = {}
        for i in unfrozen:
            resources, cap = flows[i]
            share = min((max(cap_rem[r], 0.0) / counts[r]
                         for r in resources), default=math.inf)
            candidate[i] = min(share, cap)
        s_star = min(candidate.values())
        for i in unfrozen:
            if candidate[i] <= s_star * _BATCH:
                rates[i] = candidate[i]
                frozen[i] = True
                for r in flows[i][0]:
                    cap_rem[r] -= candidate[i]

    return [max(r, 1e-12) for r in rates]


def solver_rates(flows, capacities, solver="component", kernel="python"):
    """Feed the same flow set through FlowNetwork and read back the
    rates it assigns after the first recompute."""
    sim = Simulator()
    net = FlowNetwork(sim, solver=solver, kernel=kernel)
    links = [net.add_capacity(f"r{i}", c) for i, c in enumerate(capacities)]
    for resources, cap in flows:
        net.transfer([links[r] for r in resources], 1e9, rate_cap=cap)
    sim.run(until=0.0)
    idx = np.flatnonzero(net._active)
    return [float(r) for r in net._rate[idx]]


def random_flow_set(rng, allow_duplicates):
    """A randomized (flows, capacities) instance.

    With ``allow_duplicates`` the set contains groups of identical
    (resources, cap) flows, exercising the flow-class solve; without,
    every cap is distinct, exercising the per-flow solve.
    """
    nres = int(rng.integers(2, 8))
    capacities = [float(c) for c in rng.uniform(10.0, 1000.0, size=nres)]
    flows = []
    ngroups = int(rng.integers(1, 10))
    for _ in range(ngroups):
        width = int(rng.integers(1, min(3, nres) + 1))
        resources = sorted(
            int(r) for r in rng.choice(nres, size=width, replace=False))
        if rng.random() < 0.3:
            cap = math.inf
        else:
            cap = float(rng.uniform(1.0, 500.0))
        copies = int(rng.integers(1, 6)) if allow_duplicates else 1
        flows.extend([(resources, cap)] * copies)
    return flows, capacities


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("solver", ["component", "global", "sharded"])
@pytest.mark.parametrize("seed", range(20))
@pytest.mark.parametrize("allow_duplicates", [False, True],
                         ids=["distinct", "duplicated"])
def test_solver_matches_reference(seed, allow_duplicates, solver, kernel):
    rng = np.random.default_rng(1000 + seed)
    flows, capacities = random_flow_set(rng, allow_duplicates)
    expected = reference_maxmin(flows, capacities)
    got = solver_rates(flows, capacities, solver=solver, kernel=kernel)
    assert len(got) == len(expected)
    np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("seed", range(20))
def test_capacity_conservation(seed):
    rng = np.random.default_rng(2000 + seed)
    flows, capacities = random_flow_set(rng, allow_duplicates=True)
    rates = solver_rates(flows, capacities)
    used = [0.0] * len(capacities)
    for (resources, _cap), rate in zip(flows, rates):
        for r in resources:
            used[r] += rate
    for r, cap in enumerate(capacities):
        assert used[r] <= cap * (1.0 + 1e-9) + 1e-6


@pytest.mark.parametrize("seed", range(20))
def test_flow_caps_respected(seed):
    rng = np.random.default_rng(3000 + seed)
    flows, capacities = random_flow_set(rng, allow_duplicates=True)
    rates = solver_rates(flows, capacities)
    for (_resources, cap), rate in zip(flows, rates):
        assert rate <= cap * (1.0 + 1e-9) + 1e-9


@pytest.mark.parametrize("seed", range(20))
def test_work_conservation(seed):
    """Max-min bottleneck condition: every flow is pinned either by its
    own cap or by at least one resource that is (numerically) saturated."""
    rng = np.random.default_rng(4000 + seed)
    flows, capacities = random_flow_set(rng, allow_duplicates=True)
    rates = solver_rates(flows, capacities)
    used = [0.0] * len(capacities)
    for (resources, _cap), rate in zip(flows, rates):
        for r in resources:
            used[r] += rate
    for (resources, cap), rate in zip(flows, rates):
        at_cap = math.isfinite(cap) and rate >= cap * (1.0 - 1e-9) - 1e-9
        saturated = any(used[r] >= capacities[r] * (1.0 - 1e-9) - 1e-6
                        for r in resources)
        assert at_cap or saturated, (
            f"flow {resources, cap} got {rate} but is limited by "
            f"neither cap nor any saturated resource")


def test_identical_flows_get_identical_rates():
    """Flows in one equivalence class must receive the same rate."""
    rng = np.random.default_rng(7)
    for _ in range(10):
        flows, capacities = random_flow_set(rng, allow_duplicates=True)
        rates = solver_rates(flows, capacities)
        by_class = {}
        for (resources, cap), rate in zip(flows, rates):
            by_class.setdefault((tuple(resources), cap), []).append(rate)
        for members in by_class.values():
            assert max(members) - min(members) <= 1e-12 * max(members)
