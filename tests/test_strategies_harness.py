"""Integration tests: strategies driven by the experiment harness on a
small quiet platform (deterministic, second-scale)."""

import numpy as np
import pytest

from repro.apps.workload import CM1Workload
from repro.cluster import Machine, MachineSpec, NoNoise
from repro.core.server import DamarisOptions
from repro.errors import MPIError, ReproError
from repro.experiments.harness import run_experiment
from repro.formats.compression import GZIP_MODEL
from repro.storage import Lustre, MetadataSpec, PVFS, TargetSpec
from repro.strategies import (
    CollectiveIOStrategy,
    DamarisStrategy,
    FilePerProcessStrategy,
    NoIOStrategy,
)
from repro.units import GiB, MiB


def quiet_platform(nodes=2, cores=4, fs_cls=Lustre, ntargets=4):
    machine = Machine(
        MachineSpec(nodes=nodes, cores_per_node=cores,
                    mem_bandwidth=4 * GiB, nic_bandwidth=2 * GiB),
        seed=21, noise=NoNoise(), completion_slack=0.0, fairness_slack=0.0)
    fs = fs_cls(machine, ntargets=ntargets,
                target_spec=TargetSpec(straggler_sigma=0.0,
                                       request_latency=0.0,
                                       object_half=1e9, stream_half=1e9,
                                       queue_depth=0,
                                       peak_bandwidth=500e6,
                                       stream_peak=500e6),
                metadata_spec=MetadataSpec(sigma=0.0))
    return machine, fs


def small_workload(**kwargs):
    defaults = dict(subdomain=(32, 32, 16), seconds_per_iteration=0.5,
                    iterations_per_output=4)
    defaults.update(kwargs)
    return CM1Workload(**defaults)


class TestHarnessProtocol:
    def test_rejects_zero_phases(self):
        machine, fs = quiet_platform()
        with pytest.raises(ReproError):
            run_experiment(machine, fs, small_workload(), NoIOStrategy(),
                           write_phases=0)

    def test_no_io_run_time_is_compute_only(self):
        machine, fs = quiet_platform()
        workload = small_workload()
        result = run_experiment(machine, fs, workload, NoIOStrategy(),
                                write_phases=2)
        assert result.run_time == pytest.approx(
            2 * workload.compute_block_seconds(), rel=1e-3)
        assert result.avg_write_phase < 1e-3

    def test_phase_count_and_shape(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                FilePerProcessStrategy(), write_phases=3)
        assert len(result.phases) == 3
        assert all(p.rank_times.shape == (8,) for p in result.phases)
        assert result.compute_ranks == 8
        assert result.ncores == 8

    def test_phase_duration_bounds_rank_times(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                FilePerProcessStrategy(), write_phases=2)
        for phase in result.phases:
            assert phase.duration >= phase.rank_max - 1e-9


class TestFilePerProcess:
    def test_one_file_per_rank_per_phase(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                FilePerProcessStrategy(), write_phases=2)
        assert result.files_created == 2 * result.compute_ranks
        assert fs.file_count == 2 * result.compute_ranks

    def test_compression_needs_model(self):
        machine, fs = quiet_platform()
        with pytest.raises(ValueError):
            run_experiment(machine, fs, small_workload(),
                           FilePerProcessStrategy(compress=True))

    def test_compression_shrinks_files_but_costs_time(self):
        machine, fs = quiet_platform()
        plain = run_experiment(machine, fs, small_workload(),
                               FilePerProcessStrategy())
        machine2, fs2 = quiet_platform()
        compressed = run_experiment(machine2, fs2, small_workload(),
                                    FilePerProcessStrategy(compress=True),
                                    compression=GZIP_MODEL)
        assert fs2.bytes_written < fs.bytes_written
        # gzip CPU time appears in the write phase.
        assert compressed.avg_write_phase != plain.avg_write_phase


class TestCollective:
    def test_two_phase_single_file(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                CollectiveIOStrategy(), write_phases=2)
        assert fs.file_count == 2  # one shared file per phase
        assert result.files_created == 2

    def test_direct_mode_on_pvfs(self):
        machine, fs = quiet_platform(fs_cls=PVFS)
        result = run_experiment(machine, fs, small_workload(),
                                CollectiveIOStrategy(mode="direct"),
                                write_phases=1)
        assert fs.file_count == 1
        assert result.avg_write_phase > 0

    def test_bad_mode_rejected(self):
        with pytest.raises(MPIError):
            CollectiveIOStrategy(mode="quantum")

    def test_file_size_matches_payload(self):
        machine, fs = quiet_platform()
        workload = small_workload()
        run_experiment(machine, fs, workload, CollectiveIOStrategy(),
                       write_phases=1)
        file = fs.lookup("collective/phase0.h5")
        assert file.size >= workload.total_bytes(8)

    def test_all_ranks_synchronised(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                CollectiveIOStrategy(), write_phases=1)
        phase = result.phases[0]
        # Collective writes end at a barrier inside the phase body, so
        # every rank reports (nearly) the same time.
        assert phase.rank_max - phase.rank_min < 1e-6


class TestDamarisStrategy:
    def test_dedicates_one_core_per_node(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                DamarisStrategy(), write_phases=2)
        assert result.compute_ranks == 6  # 3 of 4 cores per node
        for node in machine.nodes:
            assert len(node.dedicated_cores()) == 1

    def test_write_phase_far_below_synchronous(self):
        machine, fs = quiet_platform()
        damaris = run_experiment(machine, fs, small_workload(),
                                 DamarisStrategy(), write_phases=2)
        machine2, fs2 = quiet_platform()
        fpp = run_experiment(machine2, fs2, small_workload(),
                             FilePerProcessStrategy(), write_phases=2)
        assert damaris.avg_write_phase < 0.25 * fpp.avg_write_phase

    def test_dedicated_cores_do_the_io(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                DamarisStrategy(), write_phases=2)
        assert result.dedicated_write_times
        assert result.spare_fraction is not None
        assert 0.0 <= result.spare_fraction <= 1.0
        assert fs.file_count == 2 * len(machine.nodes)

    def test_drain_flushes_everything(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                DamarisStrategy(), write_phases=2)
        assert result.drain_time >= result.run_time
        assert fs.bytes_written > 0

    def test_compression_on_server(self):
        machine, fs = quiet_platform()
        strategy = DamarisStrategy(
            compress_on_server=True,
            options=DamarisOptions(compression=GZIP_MODEL))
        run_experiment(machine, fs, small_workload(), strategy,
                       write_phases=1)
        machine2, fs2 = quiet_platform()
        run_experiment(machine2, fs2, small_workload(), DamarisStrategy(),
                       write_phases=1)
        assert fs.bytes_written < fs2.bytes_written

    def test_compress_requires_model(self):
        machine, fs = quiet_platform()
        with pytest.raises(ValueError):
            run_experiment(machine, fs, small_workload(),
                           DamarisStrategy(compress_on_server=True))

    def test_scheduler_variant_runs(self):
        machine, fs = quiet_platform(nodes=4)
        strategy = DamarisStrategy(
            options=DamarisOptions(use_scheduler=True))
        result = run_experiment(machine, fs, small_workload(), strategy,
                                write_phases=3)
        assert result.dedicated_write_times

    def test_throughput_uses_dedicated_view(self):
        machine, fs = quiet_platform()
        result = run_experiment(machine, fs, small_workload(),
                                DamarisStrategy(), write_phases=1)
        expected = result.bytes_per_phase / np.mean(
            result.dedicated_write_times)
        assert result.aggregate_throughput == pytest.approx(expected)


class TestJitterEmergence:
    """The paper's core qualitative claims must emerge from the models."""

    def noisy_platform(self, nodes=4, cores=4):
        machine = Machine(
            MachineSpec(nodes=nodes, cores_per_node=cores,
                        mem_bandwidth=4 * GiB, nic_bandwidth=2 * GiB),
            seed=5)
        fs = Lustre(machine, ntargets=4,
                    target_spec=TargetSpec(peak_bandwidth=200e6,
                                           stream_peak=150e6,
                                           straggler_sigma=0.4,
                                           object_half=4.0))
        return machine, fs

    def test_fpp_jitter_vastly_exceeds_damaris(self):
        machine, fs = self.noisy_platform()
        fpp = run_experiment(machine, fs, small_workload(),
                             FilePerProcessStrategy(), write_phases=4)
        machine2, fs2 = self.noisy_platform()
        damaris = run_experiment(machine2, fs2, small_workload(),
                                 DamarisStrategy(), write_phases=4)
        fpp_spread = (max(p.duration for p in fpp.phases)
                      - min(p.duration for p in fpp.phases))
        damaris_spread = (max(p.duration for p in damaris.phases)
                          - min(p.duration for p in damaris.phases))
        assert damaris_spread < 0.2 * fpp_spread
        assert damaris.avg_write_phase < 0.1 * fpp.avg_write_phase
