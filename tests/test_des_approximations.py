"""Tests for the flow network's bounded approximations.

The paper-scale models enable two deliberate approximations:
``completion_slack`` (batch near-simultaneous completions, ≤1 % per-flow
timing error) and ``fairness_slack`` (freeze near-equal bottleneck levels
together in the water-filling). These tests pin down their error bounds
and their exactness when disabled.
"""

import numpy as np
import pytest

from repro.des import FlowNetwork, Simulator
from repro.errors import SimulationError


def run_flows(network, sim, specs):
    """specs: list of (nbytes, rate_cap); returns completion times."""
    import math
    done = {}

    def worker(index, nbytes, cap):
        flow = network.transfer([network.link("l")], nbytes,
                                rate_cap=cap, label=str(index))
        yield flow.event
        done[index] = sim.now

    for index, (nbytes, cap) in enumerate(specs):
        sim.process(worker(index, nbytes, cap))
    sim.run()
    return done


class TestCompletionSlack:
    def test_validation(self):
        with pytest.raises(SimulationError):
            FlowNetwork(Simulator(), completion_slack=-0.1)

    def test_zero_slack_is_exact(self):
        sim = Simulator()
        network = FlowNetwork(sim, completion_slack=0.0)
        network.add_capacity("l", 100.0)
        done = run_flows(network, sim, [(100.0, 1e9), (101.0, 1e9)])
        # Exact: the 101-byte flow finishes strictly later.
        assert done[1] > done[0]

    def test_slack_batches_near_equal_completions(self):
        sim = Simulator()
        network = FlowNetwork(sim, completion_slack=0.05)
        network.add_capacity("l", 100.0)
        done = run_flows(network, sim, [(100.0, 1e9), (101.0, 1e9)])
        # Batched: both complete in the same tick.
        assert done[0] == done[1]

    def test_error_is_bounded_by_slack(self):
        slack = 0.02
        sim = Simulator()
        network = FlowNetwork(sim, completion_slack=slack)
        network.add_capacity("l", 100.0)
        sizes = [(100.0 * (1 + 0.3 * k), 1e9) for k in range(8)]
        done = run_flows(network, sim, sizes)
        exact_total = sum(size for size, _ in sizes) / 100.0
        assert sim.now >= exact_total * (1 - 2 * slack)
        assert sim.now <= exact_total * (1 + 1e-9)
        # All bytes are accounted even for short-cut completions.
        assert network.total_bytes_moved == pytest.approx(
            sum(size for size, _ in sizes), rel=1e-9)


class TestFairnessSlack:
    def test_validation(self):
        with pytest.raises(SimulationError):
            FlowNetwork(Simulator(), fairness_slack=-1.0)

    def test_zero_slack_matches_exact_maxmin(self):
        sim = Simulator()
        network = FlowNetwork(sim, fairness_slack=0.0)
        network.add_capacity("l", 100.0)
        done = run_flows(network, sim, [(100.0, 10.0), (100.0, 1e9)])
        assert done[0] == pytest.approx(10.0, rel=1e-6)
        assert done[1] == pytest.approx(100.0 / 90.0, rel=1e-6)

    def test_slack_preserves_capacity_conservation(self):
        """Even with generous slack, allocated rates never exceed the
        link capacity."""
        sim = Simulator()
        network = FlowNetwork(sim, fairness_slack=0.25)
        network.add_capacity("l", 50.0)
        for k in range(12):
            network.transfer([network.link("l")], 100.0,
                             rate_cap=5.0 + k)
        sim.run(until=0.0)
        total_rate = float(network._rate[network._active].sum())
        assert total_rate <= 50.0 * (1 + 1e-9)

    def test_slack_total_time_close_to_exact(self):
        """Work conservation: total drain time within the slack bound."""
        def drain(slack):
            sim = Simulator()
            network = FlowNetwork(sim, fairness_slack=slack)
            network.add_capacity("l", 100.0)
            rng = np.random.default_rng(0)
            for size in rng.uniform(50, 150, size=20):
                network.transfer([network.link("l")], float(size),
                                 rate_cap=float(rng.uniform(20, 200)))
            sim.run()
            return sim.now

        exact = drain(0.0)
        approx = drain(0.10)
        assert approx == pytest.approx(exact, rel=0.15)
