"""Unit tests for the DES kernel: Simulator, Event, Timeout."""

import pytest

from repro.des import Simulator
from repro.des.core import Event, Timeout, PRIORITY_URGENT, PRIORITY_LATE
from repro.des.sched import CalendarScheduler, HeapScheduler
from repro.errors import SimulationError


class TestSimulatorClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_time_advances_with_timeouts(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_run_until_stops_at_bound(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_run_until_in_past_raises(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_empty_is_inf(self):
        assert Simulator().peek() == float("inf")

    def test_step_empty_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_events_processed_in_time_order(self):
        sim = Simulator()
        seen = []
        for delay in (3.0, 1.0, 2.0):
            sim.schedule_callback(delay, lambda d=delay: seen.append(d))
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_same_time_events_fifo(self):
        sim = Simulator()
        seen = []
        for tag in range(5):
            sim.schedule_callback(1.0, lambda t=tag: seen.append(t))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_priority_orders_same_time_events(self):
        sim = Simulator()
        seen = []
        sim.schedule_callback(1.0, lambda: seen.append("late"),
                              priority=PRIORITY_LATE)
        sim.schedule_callback(1.0, lambda: seen.append("normal"))
        sim.schedule_callback(1.0, lambda: seen.append("urgent"),
                              priority=PRIORITY_URGENT)
        sim.run()
        assert seen == ["urgent", "normal", "late"]

    def test_run_until_inf_drains_and_keeps_clock(self):
        # run(until=inf) drains the queue but must leave the clock at
        # the last processed event, not at inf.
        sim = Simulator()
        sim.timeout(5.0)
        sim.run(until=float("inf"))
        assert sim.now == 5.0
        assert sim.peek() == float("inf")

    def test_run_until_inf_empty_queue(self):
        sim = Simulator()
        sim.run(until=float("inf"))
        assert sim.now == 0.0

    def test_run_until_now_is_noop(self):
        sim = Simulator()
        sim.timeout(2.0)
        sim.run()
        sim.run(until=2.0)  # until == now: processes nothing, keeps clock
        assert sim.now == 2.0

    def test_run_until_before_next_event_advances_clock_only(self):
        sim = Simulator()
        fired = []
        sim.schedule_callback(4.0, lambda: fired.append(True))
        sim.run(until=1.5)
        assert sim.now == 1.5
        assert not fired

    def test_not_reentrant(self):
        sim = Simulator()
        err = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                err.append(exc)

        sim.schedule_callback(0.0, nested)
        sim.run()
        assert len(err) == 1


class TestEvent:
    def test_succeed_carries_value(self):
        sim = Simulator()
        event = sim.event()
        got = []
        event.callbacks.append(lambda e: got.append(e.value))
        event.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_succeed_raises(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_fail_undefused_crashes_simulation(self):
        sim = Simulator()
        sim.event().fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_fail_defused_is_silent(self):
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("boom"))
        event.defuse()
        sim.run()  # must not raise

    def test_lifecycle_flags(self):
        sim = Simulator()
        event = sim.event()
        assert not event.triggered and not event.processed
        event.succeed("x")
        assert event.triggered and not event.processed
        sim.run()
        assert event.processed and event.ok

    def test_value_raises_on_failed_event(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("nope"))
        event.defuse()
        sim.run()
        with pytest.raises(RuntimeError):
            _ = event.value


class TestTimeout:
    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(Simulator(), -1.0)

    def test_timeout_value(self):
        sim = Simulator()
        got = []

        def proc():
            got.append((yield sim.timeout(2.0, value="payload")))

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_zero_delay_fires_now(self):
        sim = Simulator()
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed and sim.now == 0.0


class TestRunUntilComplete:
    def test_returns_process_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 99

        assert sim.run_until_complete(sim.process(proc())) == 99

    def test_exhausted_queue_raises(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_complete(never)


class TestSlimCallbacks:
    """call_later/call_at push the bare callable onto the heap — no
    Event allocation — and interleave bit-identically with events."""

    def test_call_later_runs_in_time_order(self):
        sim = Simulator()
        seen = []
        for delay in (3.0, 1.0, 2.0):
            sim.call_later(delay, lambda d=delay: seen.append(d))
        sim.run()
        assert seen == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_interleaves_fifo_with_events(self):
        # A slim callback and an event scheduled at the same (time,
        # priority) fire in submission order: both consume one sequence
        # number, so replacing one with the other cannot reorder anything.
        sim = Simulator()
        seen = []
        sim.call_later(1.0, lambda: seen.append("slim-first"))
        sim.schedule_callback(1.0, lambda: seen.append("event"))
        sim.call_later(1.0, lambda: seen.append("slim-last"))
        sim.run()
        assert seen == ["slim-first", "event", "slim-last"]

    def test_priority_respected(self):
        sim = Simulator()
        seen = []
        sim.call_later(1.0, lambda: seen.append("late"),
                       priority=PRIORITY_LATE)
        sim.call_later(1.0, lambda: seen.append("urgent"),
                       priority=PRIORITY_URGENT)
        sim.run()
        assert seen == ["urgent", "late"]

    def test_call_at_absolute_time(self):
        sim = Simulator()
        sim.timeout(2.0)
        seen = []
        sim.call_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Simulator().call_later(-1.0, lambda: None)

    def test_call_at_in_past_raises(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_no_event_on_heap(self):
        sim = Simulator()
        sim.call_later(1.0, lambda: None)
        (_t, _prio, _seq, entry), = sim._heap
        assert not isinstance(entry, Event)
        assert callable(entry)

    def test_all_scheduling_paths_share_one_push(self):
        # Every public way onto the queue — event scheduling, timeouts,
        # call_later, call_at — funnels through Simulator._push, so the
        # (time, priority, seq) entry construction exists exactly once.
        sim = Simulator()
        pushed = []
        original = sim._push
        sim._push = lambda *a: (pushed.append(a), original(*a))[1]
        sim.schedule_callback(1.0, lambda: None)
        sim.timeout(2.0)
        sim.call_later(3.0, lambda: None)
        sim.call_at(4.0, lambda: None)
        assert [p[0] for p in pushed] == [1.0, 2.0, 3.0, 4.0]
        assert sim.queue_depth == 4
        sim.run()
        assert sim.now == 4.0

    def test_push_assigns_monotonic_seq(self):
        sim = Simulator()
        for delay in (5.0, 1.0, 3.0):
            sim.call_later(delay, lambda: None)
        seqs = sorted(seq for _t, _p, seq, _e in sim._heap)
        assert seqs == [1, 2, 3]


class TestSchedulerSelection:
    """The pluggable event queue behind the Simulator (REPRO_SCHEDULER)."""

    def test_default_is_calendar(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        sim = Simulator()
        assert sim.scheduler == "calendar"
        assert isinstance(sim._sched, CalendarScheduler)

    def test_explicit_argument(self):
        assert isinstance(Simulator(scheduler="heap")._sched, HeapScheduler)
        assert isinstance(Simulator(scheduler="calendar")._sched,
                          CalendarScheduler)

    def test_env_fallback_and_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "heap")
        assert Simulator().scheduler == "heap"
        assert Simulator(scheduler="calendar").scheduler == "calendar"

    def test_invalid_scheduler_raises(self):
        with pytest.raises(SimulationError):
            Simulator(scheduler="fifo")

    def test_scheduler_stats_exposed(self):
        sim = Simulator(scheduler="calendar")
        sim.timeout(1.0)
        stats = sim.scheduler_stats
        assert stats["scheduler"] == "calendar"
        assert stats["pending"] == 1

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_behaviour_parity(self, scheduler):
        # The full ordering contract — time, then priority, then FIFO —
        # holds identically under both queue implementations.
        sim = Simulator(scheduler=scheduler)
        seen = []
        sim.schedule_callback(2.0, lambda: seen.append("t2"))
        sim.call_later(1.0, lambda: seen.append("late"),
                       priority=PRIORITY_LATE)
        sim.call_later(1.0, lambda: seen.append("urgent"),
                       priority=PRIORITY_URGENT)
        sim.call_later(1.0, lambda: seen.append("normal-a"))
        sim.call_later(1.0, lambda: seen.append("normal-b"))
        sim.run()
        assert seen == ["urgent", "normal-a", "normal-b", "late", "t2"]
        assert sim.now == 2.0
