"""Determinism: every experiment is bit-for-bit reproducible per seed.

The paper's measurements are statistical; ours must be *replayable* —
same seed, same machine model, same strategy → identical timings — so
EXPERIMENTS.md numbers are stable and regressions are detectable.
"""

import numpy as np
import pytest

from repro.apps.workload import CM1Workload
from repro.experiments.harness import run_experiment
from repro.experiments.platforms import grid5000_preset, kraken_preset
from repro.strategies import DamarisStrategy, FilePerProcessStrategy


def run_once(preset_factory, strategy_factory, ncores, seed):
    preset = preset_factory()
    machine, fs, workload = preset.build(ncores, seed=seed)
    result = run_experiment(machine, fs, workload, strategy_factory(),
                            write_phases=2)
    return result


def fingerprint(result):
    return (
        round(result.run_time, 9),
        round(result.drain_time, 9),
        tuple(round(p.duration, 9) for p in result.phases),
        tuple(np.round(np.concatenate(
            [p.rank_times for p in result.phases]), 9)),
    )


class TestExperimentDeterminism:
    @pytest.mark.parametrize("strategy_factory", [
        FilePerProcessStrategy, DamarisStrategy])
    def test_same_seed_identical_results(self, strategy_factory):
        a = fingerprint(run_once(kraken_preset, strategy_factory, 48, 7))
        b = fingerprint(run_once(kraken_preset, strategy_factory, 48, 7))
        assert a == b

    def test_different_seed_different_results(self):
        a = fingerprint(run_once(kraken_preset, FilePerProcessStrategy,
                                 48, 7))
        b = fingerprint(run_once(kraken_preset, FilePerProcessStrategy,
                                 48, 8))
        assert a != b

    def test_grid5000_determinism(self):
        a = fingerprint(run_once(grid5000_preset, FilePerProcessStrategy,
                                 48, 3))
        b = fingerprint(run_once(grid5000_preset, FilePerProcessStrategy,
                                 48, 3))
        assert a == b

    def test_strategies_share_the_same_platform_randomness(self):
        """The compute-side noise must not depend on the strategy: two
        strategies at the same seed see the same interference traces
        (stream names are position-independent)."""
        fpp = run_once(kraken_preset, FilePerProcessStrategy, 48, 5)
        fpp2 = run_once(kraken_preset, FilePerProcessStrategy, 48, 5)
        assert fingerprint(fpp) == fingerprint(fpp2)


class TestWorkloadPurity:
    def test_workload_is_stateless_across_runs(self):
        w1 = CM1Workload.kraken()
        w2 = CM1Workload.kraken()
        assert w1.bytes_per_core() == w2.bytes_per_core()
        assert w1.compute_block_seconds() == w2.compute_block_seconds()
