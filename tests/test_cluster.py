"""Unit tests for the cluster hardware models."""

import pytest

from repro.cluster import (
    CrossApplicationInterference,
    Machine,
    MachineSpec,
    NoNoise,
    OSNoise,
)
from repro.errors import SimulationError
from repro.units import GiB, MiB


def small_machine(**kwargs) -> Machine:
    defaults = dict(nodes=2, cores_per_node=4, mem_bandwidth=4 * GiB,
                    nic_bandwidth=1 * GiB)
    defaults.update(kwargs)
    return Machine(MachineSpec(name="test", **defaults), seed=3,
                   completion_slack=0.0, fairness_slack=0.0)


class TestMachineSpec:
    def test_total_cores(self):
        assert MachineSpec(nodes=768, cores_per_node=12).total_cores == 9216

    def test_validation(self):
        with pytest.raises(SimulationError):
            MachineSpec(nodes=0)
        with pytest.raises(SimulationError):
            MachineSpec(cores_per_node=0)


class TestMachineTopology:
    def test_node_and_core_counts(self):
        machine = small_machine()
        assert len(machine.nodes) == 2
        assert machine.total_cores == 8
        assert len(machine.all_cores()) == 8

    def test_core_lookup_by_global_index(self):
        machine = small_machine()
        core = machine.core(5)
        assert core.node.index == 1
        assert core.index == 1
        assert core.global_index == 5

    def test_core_lookup_out_of_range(self):
        with pytest.raises(SimulationError):
            small_machine().core(99)

    def test_dedicated_core_partition(self):
        machine = small_machine()
        node = machine.nodes[0]
        node.cores[-1].dedicated = True
        assert len(node.compute_cores()) == 3
        assert len(node.dedicated_cores()) == 1


class TestMemcpyContention:
    def test_single_copy_at_bus_speed(self):
        machine = small_machine()
        flow = machine.nodes[0].memcpy(4 * GiB)
        machine.sim.run()
        assert flow.duration == pytest.approx(1.0, rel=1e-6)

    def test_concurrent_copies_share_the_bus(self):
        machine = small_machine()
        flows = [machine.nodes[0].memcpy(1 * GiB) for _ in range(4)]
        machine.sim.run()
        # 4 GiB total on a 4 GiB/s bus: all finish together at 1 s.
        for flow in flows:
            assert flow.duration == pytest.approx(1.0, rel=1e-6)

    def test_copies_on_different_nodes_do_not_contend(self):
        machine = small_machine()
        flow_a = machine.nodes[0].memcpy(4 * GiB)
        flow_b = machine.nodes[1].memcpy(4 * GiB)
        machine.sim.run()
        assert flow_a.duration == pytest.approx(1.0, rel=1e-6)
        assert flow_b.duration == pytest.approx(1.0, rel=1e-6)


class TestSend:
    def test_inter_node_uses_nics(self):
        machine = small_machine()
        flow = machine.send(machine.nodes[0], machine.nodes[1], 1 * GiB)
        machine.sim.run()
        assert flow.duration == pytest.approx(1.0, rel=1e-6)

    def test_same_node_send_is_a_memcpy(self):
        machine = small_machine()
        flow = machine.send(machine.nodes[0], machine.nodes[0], 4 * GiB)
        machine.sim.run()
        assert flow.duration == pytest.approx(1.0, rel=1e-6)

    def test_fabric_limits_aggregate(self):
        machine = Machine(
            MachineSpec(nodes=4, cores_per_node=1, nic_bandwidth=1 * GiB,
                        fabric_bandwidth=1 * GiB),
            seed=0, completion_slack=0.0, fairness_slack=0.0)
        flows = [machine.send(machine.nodes[i], machine.nodes[(i + 2) % 4],
                              1 * GiB) for i in range(2)]
        machine.sim.run()
        # Two 1 GiB sends share a 1 GiB/s fabric: 2 s each.
        for flow in flows:
            assert flow.duration == pytest.approx(2.0, rel=1e-6)


class TestCompute:
    def test_compute_without_noise_is_exact(self):
        machine = Machine(MachineSpec(nodes=1, cores_per_node=2), seed=0,
                          noise=NoNoise())
        core = machine.nodes[0].cores[0]
        event = core.compute(5.0)
        machine.sim.run()
        assert machine.sim.now == 5.0
        assert event.processed

    def test_os_noise_dilates_compute(self):
        machine = Machine(MachineSpec(nodes=1, cores_per_node=2), seed=1,
                          noise=OSNoise(sigma=0.1))
        core = machine.nodes[0].cores[0]
        core.compute(10.0)
        machine.sim.run()
        assert machine.sim.now != 10.0
        assert 8.0 < machine.sim.now < 12.5

    def test_noise_is_deterministic_per_seed(self):
        def run(seed):
            machine = Machine(MachineSpec(nodes=1, cores_per_node=1),
                              seed=seed, noise=OSNoise(sigma=0.05))
            machine.nodes[0].cores[0].compute(10.0)
            machine.sim.run()
            return machine.sim.now

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            OSNoise(sigma=-1.0)


class TestCrossApplicationInterference:
    def test_interference_modulates_capacity(self):
        machine = small_machine()
        target = machine.flows.add_capacity("shared-target", 1000.0)
        interference = CrossApplicationInterference(
            [target], period=1.0, mean_load=0.4)
        interference.start(machine.sim, machine.streams)
        machine.sim.run(until=10.0)
        assert target.capacity < 1000.0
        assert target.capacity > 0.0

    def test_mean_load_validation(self):
        machine = small_machine()
        target = machine.flows.add_capacity("t", 100.0)
        with pytest.raises(ValueError):
            CrossApplicationInterference([target], mean_load=1.5)
