"""Smoke tests: the runnable examples must actually run.

Only the fast examples run here (the DES sweeps in jitter_analysis /
spare_time_scheduling take minutes and are exercised by the benches);
each is executed as a real subprocess, exactly as a user would.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "client-visible I/O time" in result.stdout
        assert "read back" in result.stdout

    @pytest.mark.slow
    def test_tornado_simulation(self):
        result = run_example("tornado_simulation.py")
        assert result.returncode == 0, result.stderr
        assert "peak updraft" in result.stdout
        assert "zero-copy" in result.stdout

    def test_steering(self):
        result = run_example("steering.py")
        assert result.returncode == 0, result.stderr
        assert "external steering" in result.stdout
        assert "particles" in result.stdout

    def test_cluster_simulation_tiny(self):
        result = run_example("cluster_simulation.py", "24")
        assert result.returncode == 0, result.stderr
        assert "damaris" in result.stdout
        assert "file-per-process" in result.stdout
