"""Property-style tests for the plain-data layers the service trusts.

Two serialisation boundaries now carry experiment identity end to end:

- **fault schedules** travel inside sweep specs as dicts/JSON
  (:meth:`FaultSchedule.to_json` / :meth:`from_json`), so a lossy
  round-trip would silently change which faults a cached result claims
  to describe;
- **cache-key canonicalisation** (:mod:`repro.cache.keys`) decides when
  two submitted specs are *the same experiment* — key stability and
  insensitivity to irrelevant representation choices (dict ordering,
  list vs tuple) are exactly what cross-tenant dedup rests on.

Both are checked with randomized hypothesis cases, not hand-picked
examples.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.keys import UncacheableArgument, canonical_blob, task_key
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultSchedule,
    FaultSpec,
)

# --------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------- #
_times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
                   allow_infinity=False)
_durations = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False,
                       allow_infinity=False)
_fractions = st.floats(min_value=1e-3, max_value=1.0, allow_nan=False,
                       allow_infinity=False)
_slowdowns = st.floats(min_value=1.0, max_value=64.0, allow_nan=False,
                       allow_infinity=False)
_indices = st.lists(st.integers(min_value=0, max_value=511), min_size=0,
                    max_size=6, unique=True)
_labels = st.text(
    alphabet=st.characters(codec="utf-8",
                           blacklist_categories=("Cs",)),
    max_size=24)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(FAULT_KINDS))
    nodes = draw(_indices)
    if kind in ("node_crash", "correlated_crash") and not nodes:
        nodes = draw(st.lists(st.integers(0, 511), min_size=1,
                              max_size=6, unique=True))
    if kind in ("nic_degrade", "ost_brownout"):
        factor = draw(_fractions)
    elif kind in ("straggler", "mds_brownout"):
        factor = draw(_slowdowns)
    else:
        factor = 1.0
    return FaultSpec(
        kind=kind,
        time=draw(_times),
        duration=draw(_durations),
        nodes=tuple(nodes),
        targets=tuple(draw(_indices)),
        factor=factor,
        stagger=(draw(_times) if kind == "correlated_crash" else 0.0),
        compute_factor=draw(_slowdowns),
        extra_revokes=draw(st.integers(min_value=1, max_value=9)),
        label=draw(_labels),
    )


@st.composite
def fault_schedules(draw):
    return FaultSchedule(
        faults=tuple(draw(st.lists(fault_specs(), max_size=5))),
        name=draw(_labels) or "faults")


#: JSON-shaped spec-ish values: what a submitted sweep spec can contain.
_json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12))
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)


# --------------------------------------------------------------------- #
# FaultSchedule round-trips
# --------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(fault_schedules())
def test_fault_schedule_dict_round_trip(schedule):
    rebuilt = FaultSchedule.from_dict(schedule.to_dict())
    assert rebuilt == schedule


@settings(max_examples=30, deadline=None)
@given(schedule=fault_schedules())
def test_fault_schedule_json_round_trip(tmp_path_factory, schedule):
    path = str(tmp_path_factory.mktemp("sched") / "schedule.json")
    schedule.to_json(path)
    rebuilt = FaultSchedule.from_json(path)
    assert rebuilt == schedule
    # the file itself is canonical: a second dump is byte-identical
    again = str(tmp_path_factory.mktemp("sched") / "again.json")
    rebuilt.to_json(again)
    assert open(path).read() == open(again).read()


@settings(max_examples=30, deadline=None)
@given(fault_schedules())
def test_fault_schedule_dict_form_is_json_safe_and_stable(schedule):
    wire = json.dumps(schedule.to_dict(), sort_keys=True)
    assert FaultSchedule.from_dict(json.loads(wire)) == schedule


@settings(max_examples=30, deadline=None)
@given(fault_schedules())
def test_fault_schedule_folds_into_cache_keys(schedule):
    """Two specs differing only in their fault payloads must key apart;
    the same schedule arriving via dict or JSON must key together."""
    def fn(spec):
        return spec  # any picklable module-level-ish callable works

    base = {"preset": "grid5000", "ncores": 24,
            "strategy": {"kind": "damaris"}}
    with_faults = dict(base, faults=schedule.to_dict())
    rebuilt = dict(
        base,
        faults=FaultSchedule.from_dict(schedule.to_dict()).to_dict())
    key_a = task_key(test_fault_schedule_folds_into_cache_keys,
                     (with_faults,), {}, "fp")
    key_b = task_key(test_fault_schedule_folds_into_cache_keys,
                     (rebuilt,), {}, "fp")
    assert key_a == key_b
    if len(schedule):
        key_plain = task_key(test_fault_schedule_folds_into_cache_keys,
                             (base,), {}, "fp")
        assert key_a != key_plain


# --------------------------------------------------------------------- #
# cache-key canonicalisation
# --------------------------------------------------------------------- #
@settings(max_examples=80, deadline=None)
@given(_json_values)
def test_canonical_blob_is_deterministic(value):
    assert canonical_blob(value) == canonical_blob(value)


@settings(max_examples=80, deadline=None)
@given(st.dictionaries(st.text(max_size=8), _json_values, max_size=6))
def test_canonical_blob_ignores_dict_insertion_order(mapping):
    reordered = dict(reversed(list(mapping.items())))
    assert canonical_blob(mapping) == canonical_blob(reordered)


@settings(max_examples=80, deadline=None)
@given(st.lists(_json_scalars, max_size=6))
def test_canonical_blob_list_tuple_equivalent(items):
    assert canonical_blob(items) == canonical_blob(tuple(items))


@settings(max_examples=80, deadline=None)
@given(_json_values, _json_values)
def test_canonical_blob_distinguishes_distinct_values(a, b):
    if a != b:
        assert canonical_blob(a) != canonical_blob(b)
    else:
        assert canonical_blob(a) == canonical_blob(b)


def test_canonical_blob_bool_int_not_conflated():
    # Python's True == 1, but a spec flag and a count are different
    # experiments.
    assert canonical_blob(True) != canonical_blob(1)
    assert canonical_blob(False) != canonical_blob(0)


def test_canonical_blob_rejects_unknown_types():
    with pytest.raises(UncacheableArgument):
        canonical_blob(object())


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(
    st.sampled_from(["preset", "ncores", "strategy", "seed",
                     "write_phases", "nvariables", "trace_label"]),
    _json_scalars, min_size=1, max_size=7))
def test_task_key_reordering_insensitive_and_sensitive_to_content(spec):
    def fn(s):
        return s

    reordered = dict(reversed(list(spec.items())))
    assert task_key(fn, (spec,), {}, "fp") \
        == task_key(fn, (reordered,), {}, "fp")
    changed = dict(spec, _extra_field="x")
    assert task_key(fn, (changed,), {}, "fp") \
        != task_key(fn, (spec,), {}, "fp")
    # fingerprint and kwargs fold in too
    assert task_key(fn, (spec,), {}, "other-fp") \
        != task_key(fn, (spec,), {}, "fp")
    assert task_key(fn, (), {"spec": spec}, "fp") \
        != task_key(fn, (spec,), {}, "fp")
