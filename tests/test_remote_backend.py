"""Integration tests for the remote sweep backend with live TCP workers.

Each test launches real ``sweepworkerctl serve`` subprocesses (ephemeral
ports published through ``--port-file``) and drives them through
``run_sweep``/``RemoteBackend``. Covered here: the bit-identity
determinism matrix serial ≡ process ≡ remote over solver × scheduler ×
kernel modes (which also exercises the welcome-frame env passthrough),
worker SIGKILL mid-sweep with zero lost or duplicated results,
fingerprint-mismatch handshake rejection, straggler re-dispatch with
loser discard, task-error propagation, warm-cache admission that never
dials out, and the worker CLI itself. Scheduler-level unit tests (no
sockets) live in ``test_backends.py``.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.cache import ResultCache
from repro.experiments.backends import RemoteBackend
from repro.experiments.backends.remote import (
    NoWorkersError,
    RemoteTaskError,
)
from repro.experiments.executor import SweepTask, run_sweep
from repro.experiments.specs import run_spec

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Environment knobs that must not leak from the test runner into
#: worker subprocesses (the welcome frame is what configures them).
_MODE_KEYS = ("REPRO_FAST", "REPRO_SOLVER", "REPRO_KERNEL",
              "REPRO_SCHEDULER", "REPRO_SHARDS", "REPRO_SHARD_WORKERS",
              "REPRO_TRACE", "REPRO_CACHE", "REPRO_PARALLEL",
              "REPRO_BACKEND", "REPRO_WORKERS")


def _worker_env():
    env = {key: value for key, value in os.environ.items()
           if key not in _MODE_KEYS}
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def start_worker(tmp_path, name, *, fingerprint=None, once=False):
    """Launch one worker subprocess; returns ``(proc, "host:port")``."""
    port_file = tmp_path / f"{name}.port"
    cmd = [sys.executable, "-m", "repro.tools.sweepworkerctl", "serve",
           "--port", "0", "--port-file", str(port_file),
           "--tag", name, "--max-idle", "120"]
    if fingerprint is not None:
        cmd += ["--fingerprint", fingerprint]
    if once:
        cmd.append("--once")
    proc = subprocess.Popen(
        cmd, cwd=str(REPO_ROOT), env=_worker_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return proc, text
        if proc.poll() is not None:
            raise RuntimeError(
                f"worker {name} died on startup:\n"
                f"{proc.stdout.read().decode(errors='replace')}")
        time.sleep(0.02)
    proc.kill()
    raise RuntimeError(f"worker {name} never published its port")


@pytest.fixture
def fleet(tmp_path):
    """Two live localhost workers; killed (if needed) on teardown."""
    procs = []
    addrs = []
    for i in range(2):
        proc, addr = start_worker(tmp_path, f"w{i}")
        procs.append(proc)
        addrs.append(addr)
    yield addrs
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()


def _sleep_echo(duration, x):
    time.sleep(duration)
    return x


def _boom(x):
    raise ValueError(f"task {x} exploded")


def _read_mode_env():
    return {"fast": os.environ.get("REPRO_FAST"),
            "solver": os.environ.get("REPRO_SOLVER")}


def _laggard(sentinel, x):
    """First caller (exclusive sentinel create) sleeps; later ones are
    instant — so whichever replica runs second wins the race."""
    try:
        fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
    except FileExistsError:
        return x
    time.sleep(8.0)
    return x


def _result_bits(result):
    """Bit-exact fingerprint of an ExperimentResult (no rounding)."""
    return (
        result.strategy, result.ncores, result.run_time,
        result.drain_time,
        tuple(p.duration for p in result.phases),
        tuple(p.rank_times.tobytes() for p in result.phases),
    )


def _small_specs():
    return [
        {"preset": "grid5000", "ncores": 24,
         "strategy": {"kind": "damaris"}, "seed": 7, "write_phases": 1},
        {"preset": "grid5000", "ncores": 24,
         "strategy": {"kind": "fpp"}, "seed": 7, "write_phases": 1},
        {"preset": "grid5000", "ncores": 48,
         "strategy": {"kind": "damaris"}, "seed": 11, "write_phases": 1},
    ]


class TestDeterminismMatrix:
    """serial ≡ process ≡ remote, across run-mode env knobs.

    The remote leg doubles as the env-passthrough test: the workers are
    launched in a *vanilla* environment, so they only produce identical
    bits if the welcome frame really carries the coordinator's
    solver/scheduler/kernel modes across the wire.
    """

    MATRIX = [
        {"REPRO_SOLVER": "component", "REPRO_SCHEDULER": "calendar"},
        {"REPRO_SOLVER": "global", "REPRO_SCHEDULER": "heap"},
        {"REPRO_SOLVER": "sharded", "REPRO_SCHEDULER": "calendar",
         "REPRO_SHARDS": "2"},
    ]

    def test_matrix_bit_identity(self, fleet, monkeypatch):
        tasks = [SweepTask(run_spec, (spec,)) for spec in _small_specs()]
        monkeypatch.setenv("REPRO_WORKERS", ",".join(fleet))
        for modes in self.MATRIX:
            for key in _MODE_KEYS:
                monkeypatch.delenv(key, raising=False)
            monkeypatch.setenv("REPRO_WORKERS", ",".join(fleet))
            for key, value in modes.items():
                monkeypatch.setenv(key, value)
            serial = run_sweep(tasks, cache=False, backend="serial")
            process = run_sweep(tasks, parallel=2, cache=False,
                                backend="process")
            remote = run_sweep(tasks, cache=False, backend="remote")
            serial_bits = [_result_bits(r) for r in serial]
            assert [_result_bits(r) for r in process] == serial_bits, \
                f"process != serial under {modes}"
            assert [_result_bits(r) for r in remote] == serial_bits, \
                f"remote != serial under {modes}"

    def test_compiled_kernel_cell(self, fleet, monkeypatch):
        from repro.des.kernels import kernel_status
        if kernel_status() == "unavailable":
            pytest.skip("no compiled kernel backend in this environment")
        tasks = [SweepTask(run_spec, (spec,))
                 for spec in _small_specs()[:2]]
        for key in _MODE_KEYS:
            monkeypatch.delenv(key, raising=False)
        monkeypatch.setenv("REPRO_WORKERS", ",".join(fleet))
        monkeypatch.setenv("REPRO_KERNEL", "compiled")
        serial = run_sweep(tasks, cache=False, backend="serial")
        remote = run_sweep(tasks, cache=False, backend="remote")
        assert [_result_bits(r) for r in remote] == \
            [_result_bits(r) for r in serial]


class TestCrashRecovery:
    def test_sigkill_mid_sweep_no_lost_or_duplicated(self, tmp_path):
        procs, addrs = [], []
        for i in range(2):
            proc, addr = start_worker(tmp_path, f"k{i}")
            procs.append(proc)
            addrs.append(addr)
        try:
            tasks = [(i, SweepTask(_sleep_echo, (0.15, i)))
                     for i in range(10)]
            backend = RemoteBackend(addrs, chunk_cap=2)
            outcomes = []
            killed = []
            for outcome in backend.run_tasks(tasks):
                outcomes.append(outcome)
                if not killed:
                    # First completion: one worker certainly holds
                    # in-flight tasks — SIGKILL it mid-batch.
                    procs[0].send_signal(signal.SIGKILL)
                    killed.append(procs[0].pid)
            assert killed, "kill never happened"
            # Zero lost: every index came back exactly once, with the
            # right value, despite the crash.
            indices = [o.index for o in outcomes]
            assert sorted(indices) == list(range(10))
            assert len(set(indices)) == 10
            assert {o.index: o.value for o in outcomes} == {
                i: i for i in range(10)}
            counters = backend.counters()
            assert counters["crashed"] >= 1.0
            assert counters["completed"] == 10.0
            # The survivor carried the requeued work.
            survivors = {o.worker for o in outcomes}
            assert any("k1@" in w for w in survivors)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()

    def test_all_workers_dead_typed_error(self, tmp_path):
        proc, addr = start_worker(tmp_path, "doomed")
        try:
            tasks = [(i, SweepTask(_sleep_echo, (0.3, i)))
                     for i in range(4)]
            backend = RemoteBackend([addr], max_task_retries=1)
            with pytest.raises(NoWorkersError):
                for n, _outcome in enumerate(backend.run_tasks(tasks)):
                    if n == 0:
                        proc.kill()
        finally:
            if proc.poll() is None:
                proc.kill()


class TestHandshake:
    def test_fingerprint_mismatch_rejected(self, tmp_path):
        proc, addr = start_worker(tmp_path, "stale",
                                  fingerprint="stale-checkout-beef")
        try:
            backend = RemoteBackend([addr], connect_timeout=5.0)
            with pytest.raises(NoWorkersError, match="no admissible"):
                list(backend.run_tasks(
                    [(0, SweepTask(_sleep_echo, (0.0, 0)))]))
            assert backend.counters()["rejected"] == 1.0
            # The worker logged the rejection and kept serving (it is
            # not killed by being refused).
            assert proc.poll() is None
        finally:
            proc.terminate()
            proc.wait(timeout=10)

    def test_mixed_fleet_uses_only_matching_worker(self, tmp_path):
        stale_proc, stale_addr = start_worker(
            tmp_path, "stale", fingerprint="stale-checkout-beef")
        good_proc, good_addr = start_worker(tmp_path, "good")
        try:
            backend = RemoteBackend([stale_addr, good_addr])
            outcomes = list(backend.run_tasks(
                [(i, SweepTask(_sleep_echo, (0.0, i))) for i in range(4)]))
            assert sorted(o.index for o in outcomes) == [0, 1, 2, 3]
            assert all("good@" in o.worker for o in outcomes)
            assert backend.counters()["rejected"] == 1.0
        finally:
            for proc in (stale_proc, good_proc):
                if proc.poll() is None:
                    proc.kill()

    def test_unreachable_worker_counts_rejected(self, fleet):
        # A dead address in the list is skipped; live workers carry on.
        backend = RemoteBackend(["127.0.0.1:1", *fleet],
                                connect_timeout=2.0)
        outcomes = list(backend.run_tasks(
            [(i, SweepTask(_sleep_echo, (0.0, i))) for i in range(4)]))
        assert sorted(o.index for o in outcomes) == [0, 1, 2, 3]
        assert backend.counters()["rejected"] == 1.0


class TestStraggler:
    def test_speculative_redispatch_discards_loser(self, tmp_path, fleet):
        sentinel = tmp_path / "laggard.sentinel"
        tasks = [SweepTask(_laggard, (str(sentinel), 0), label="laggard")]
        tasks += [SweepTask(_sleep_echo, (0.05, i), label=f"fast{i}")
                  for i in range(1, 6)]
        backend = RemoteBackend(fleet, chunk_cap=1)
        start = time.monotonic()
        outcomes = list(backend.run_tasks(list(enumerate(tasks))))
        wall = time.monotonic() - start
        assert sorted(o.index for o in outcomes) == list(range(6))
        assert {o.index: o.value for o in outcomes} == {
            0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}
        counters = backend.counters()
        assert counters["speculative"] >= 1.0, counters
        assert counters["completed"] == 6.0
        # The replica (second invocation, instant) won; without the
        # re-dispatch the sweep would block on the 8 s sleep.
        assert wall < 6.0, f"straggler not rescued ({wall:.1f}s)"


class TestTaskErrors:
    def test_task_exception_propagates_with_traceback(self, fleet):
        backend = RemoteBackend(fleet)
        with pytest.raises(RemoteTaskError) as err:
            list(backend.run_tasks([(0, SweepTask(_boom, (13,)))]))
        assert "task 13 exploded" in str(err.value)
        assert "ValueError" in err.value.remote_traceback
        # Deterministic task failures are not retried as crashes.
        assert backend.counters()["requeued"] == 0.0
        # The workers survive a task error and serve the next sweep.
        outcomes = list(backend.run_tasks(
            [(0, SweepTask(_sleep_echo, (0.0, "ok")))]))
        assert outcomes[0].value == "ok"


class TestCacheAdmission:
    def test_warm_sweep_never_dials_out(self, tmp_path, monkeypatch):
        # Address is a black hole: if the warm run constructed the
        # backend, it would fail to connect. Hits must short-circuit.
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        tasks = [SweepTask(_sleep_echo, (0.0, i)) for i in range(3)]
        cold = run_sweep(tasks, parallel=1, cache=cache)
        monkeypatch.setenv("REPRO_WORKERS", "127.0.0.1:1")
        warm = run_sweep(tasks, cache=cache, backend="remote")
        assert warm == cold
        assert cache.stats.hits == 3

    def test_remote_misses_write_back(self, tmp_path, fleet, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.setenv("REPRO_WORKERS", ",".join(fleet))
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        tasks = [SweepTask(_sleep_echo, (0.0, i)) for i in range(4)]
        cold = run_sweep(tasks, cache=cache, backend="remote")
        assert cache.stats.writes == 4
        warm = run_sweep(tasks, cache=cache, backend="serial")
        assert warm == cold
        assert cache.stats.hits == 4


class TestWorkerCli:
    def test_stop_command(self, tmp_path):
        proc, addr = start_worker(tmp_path, "stoppable")
        try:
            res = subprocess.run(
                [sys.executable, "-m", "repro.tools.sweepworkerctl",
                 "stop", addr],
                cwd=str(REPO_ROOT), env=_worker_env(),
                capture_output=True, text=True, timeout=30)
            assert res.returncode == 0, res.stderr
            assert "stoppable" in res.stdout
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_once_exits_after_one_connection(self, tmp_path):
        proc, addr = start_worker(tmp_path, "oneshot", once=True)
        try:
            backend = RemoteBackend([addr])
            outcomes = list(backend.run_tasks(
                [(0, SweepTask(_sleep_echo, (0.0, "x")))]))
            assert outcomes[0].value == "x"
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

    def test_stop_rejects_non_worker(self, tmp_path):
        res = subprocess.run(
            [sys.executable, "-m", "repro.tools.sweepworkerctl",
             "stop", "127.0.0.1:1"],
            cwd=str(REPO_ROOT), env=_worker_env(),
            capture_output=True, text=True, timeout=30)
        assert res.returncode == 3
        assert "cannot reach" in res.stderr
