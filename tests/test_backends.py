"""Unit tests for the sweep-backend layer.

Covers the pieces that don't need live TCP workers: the wire protocol
framing, the remote coordinator's scheduler (chunking, crash requeue,
retry limits, straggler speculation, duplicate discard), the local
backends, the registry, and the executor-level regressions the backend
refactor fixed (head-of-line blocking, cache-context mutation).
Everything touching real worker subprocesses lives in
``test_remote_backend.py``.
"""

import os
import socket
import threading
import time

import pytest

from repro.cache import ResultCache
from repro.experiments.backends import (
    Backend,
    BackendError,
    ProcessBackend,
    SerialBackend,
    TaskOutcome,
    default_backend_name,
    make_backend,
)
from repro.experiments.backends.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    recv_msg,
    send_msg,
)
from repro.experiments.backends.remote import (
    NoWorkersError,
    RemoteBackend,
    RemoteBackendError,
    TaskRetryLimitError,
    _Scheduler,
    parse_workers,
)
from repro.experiments.executor import (
    SweepTask,
    env_mode_context,
    resolve_cache_context,
    run_sweep,
)


def _value(x):
    return x * 3


def _sleep_value(args):
    duration, x = args
    time.sleep(duration)
    return x


# ---------------------------------------------------------------------- #
# protocol framing
# ---------------------------------------------------------------------- #
class TestProtocol:
    def _pair(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        client = socket.create_connection(server.getsockname())
        conn, _ = server.accept()
        server.close()
        return client, conn

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            payload = {"type": "run", "tasks": [(0, "x")], "blob": b"\x00" * 999}
            send_msg(a, payload)
            send_msg(a, [1, 2, 3])
            assert recv_msg(b) == payload
            assert recv_msg(b) == [1, 2, 3]
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_mid_frame_eof_raises(self):
        a, b = self._pair()
        try:
            a.sendall(b"RSW1" + (123456).to_bytes(8, "big") + b"short")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_bad_magic_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"HTTP" + (4).to_bytes(8, "big") + b"GET ")
            with pytest.raises(ProtocolError, match="magic"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"RSW1" + (MAX_FRAME_BYTES + 1).to_bytes(8, "big"))
            with pytest.raises(ProtocolError, match="exceeds cap"):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_unpicklable_body_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"RSW1" + (4).to_bytes(8, "big") + b"junk")
            with pytest.raises(ProtocolError, match="unpickle"):
                recv_msg(b)
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------- #
# address parsing
# ---------------------------------------------------------------------- #
class TestParseWorkers:
    def test_comma_string(self):
        assert parse_workers("a:1, b:2,c:3") == [
            ("a", 1), ("b", 2), ("c", 3)]

    def test_bare_port_is_localhost(self):
        assert parse_workers(":7401 7402") == [
            ("127.0.0.1", 7401), ("127.0.0.1", 7402)]

    def test_tuples_pass_through(self):
        assert parse_workers([("h", 9)]) == [("h", 9)]

    def test_none_and_empty(self):
        assert parse_workers(None) == []
        assert parse_workers("") == []

    @pytest.mark.parametrize("bad", ["host:", "host:zero", "h:99999"])
    def test_bad_addresses_typed_error(self, bad):
        with pytest.raises(RemoteBackendError, match="bad worker address"):
            parse_workers(bad)


# ---------------------------------------------------------------------- #
# the remote scheduler (no sockets: drive it directly)
# ---------------------------------------------------------------------- #
class TestScheduler:
    def _drain_results(self, sched):
        out = []
        while not sched.events.empty():
            kind, payload = sched.events.get_nowait()
            out.append((kind, payload))
        return out

    def test_chunks_shrink_as_queue_drains(self):
        sched = _Scheduler(32, 1, chunk_cap=8)
        sched.worker_ready("w1")
        first = sched.next_batch("w1")
        # 32 pending / (2 workers-slots * 1 active) = 16, capped at 8.
        assert len(first) == 8
        for task_id in first:
            sched.record_result("w1", task_id, task_id, 0.0)
        nxt = sched.next_batch("w1")
        assert len(nxt) == 8  # 24 // 2 = 12 -> cap 8
        for task_id in nxt:
            sched.record_result("w1", task_id, task_id, 0.0)
        assert len(sched.next_batch("w1")) == 8  # 16 // 2 = 8
        # Near the tail the batches shrink to singletons.
        small = _Scheduler(3, 1, chunk_cap=8)
        small.worker_ready("w1")
        assert len(small.next_batch("w1")) == 1

    def test_crash_requeues_inflight(self):
        sched = _Scheduler(4, 2, chunk_cap=4)
        sched.worker_ready("w1")
        sched.worker_ready("w2")
        batch = sched.next_batch("w1")
        assert batch  # w1 holds some tasks
        sched.link_dead("w1", "boom")
        assert sched.counters.crashed == 1
        assert sched.counters.requeued == len(batch)
        # The survivor picks the requeued tasks back up.
        seen = []
        while len(seen) < 4:
            got = sched.next_batch("w2")
            assert got is not None
            for task_id in got:
                sched.record_result("w2", task_id, task_id, 0.0)
                seen.append(task_id)
        assert sorted(seen) == [0, 1, 2, 3]
        assert sched.next_batch("w2") is None

    def test_retry_limit_aborts_typed(self):
        sched = _Scheduler(1, 4, max_task_retries=2)
        for n in range(3):
            worker = f"w{n}"
            sched.worker_ready(worker)
            assert sched.next_batch(worker) == [0]
            sched.link_dead(worker, "boom")
        events = self._drain_results(sched)
        assert events, "retry limit should abort the sweep"
        kind, exc = events[-1]
        assert kind == "abort"
        assert isinstance(exc, TaskRetryLimitError)

    def test_all_workers_lost_aborts(self):
        sched = _Scheduler(2, 1)
        sched.worker_ready("w1")
        sched.next_batch("w1")
        sched.link_dead("w1", "gone")
        kind, exc = self._drain_results(sched)[-1]
        assert kind == "abort"
        assert isinstance(exc, NoWorkersError)

    def test_all_workers_rejected_aborts(self):
        sched = _Scheduler(2, 2)
        sched.link_dead(None, "fingerprint mismatch", rejected=True)
        sched.link_dead(None, "fingerprint mismatch", rejected=True)
        assert sched.counters.rejected == 2
        kind, exc = self._drain_results(sched)[-1]
        assert kind == "abort"
        assert isinstance(exc, NoWorkersError)

    def test_speculation_duplicates_tail_first_result_wins(self):
        sched = _Scheduler(2, 2, chunk_cap=1)
        sched.worker_ready("w1")
        sched.worker_ready("w2")
        assert sched.next_batch("w1") == [0]
        assert sched.next_batch("w2") == [1]
        # w1 finishes; pending is empty, so it speculates w2's task.
        sched.record_result("w1", 0, "a", 0.0)
        assert sched.next_batch("w1") == [1]
        assert sched.counters.speculative == 1
        # w1's replica wins the race; w2's late result is discarded.
        sched.record_result("w1", 1, "b", 0.0)
        sched.record_result("w2", 1, "b", 0.0)
        assert sched.counters.discarded == 1
        assert sched.counters.completed == 2
        results = [payload for kind, payload in self._drain_results(sched)
                   if kind == "result"]
        assert sorted(outcome.index for outcome in results) == [0, 1]

    def test_no_speculation_before_first_completion(self):
        # A sweep smaller than the worker pool must not be doubled up
        # front: speculation waits until at least one real completion.
        sched = _Scheduler(2, 3, chunk_cap=1)
        for worker in ("w1", "w2", "w3"):
            sched.worker_ready(worker)
        assert sched.next_batch("w1") == [0]
        assert sched.next_batch("w2") == [1]
        blocked = []
        thread = threading.Thread(
            target=lambda: blocked.append(sched.next_batch("w3")))
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive(), "w3 should block, not speculate"
        sched.record_result("w1", 0, "a", 0.0)
        thread.join(timeout=5.0)
        assert blocked == [[1]]  # after a completion, w3 speculates
        sched.record_result("w3", 1, "b", 0.0)

    def test_replica_cap_two(self):
        sched = _Scheduler(1, 3, chunk_cap=1)
        for worker in ("w1", "w2", "w3"):
            sched.worker_ready(worker)
        assert sched.next_batch("w1") == [0]
        sched.counters.completed += 1  # enable speculation
        assert sched.next_batch("w2") == [0]
        # Third worker finds no candidate (2 replicas live) and blocks.
        blocked = []
        thread = threading.Thread(
            target=lambda: blocked.append(sched.next_batch("w3")))
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()
        sched.record_result("w1", 0, "x", 0.0)
        thread.join(timeout=5.0)
        assert blocked == [None]


# ---------------------------------------------------------------------- #
# local backends
# ---------------------------------------------------------------------- #
class TestLocalBackends:
    def test_serial_outcomes(self):
        backend = SerialBackend()
        tasks = [(i, SweepTask(_value, (i,))) for i in range(4)]
        outcomes = list(backend.run_tasks(tasks))
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [0, 3, 6, 9]
        assert all(o.worker == f"serial/{os.getpid()}" for o in outcomes)
        assert all(o.duration >= 0.0 for o in outcomes)
        assert backend.counters()["completed"] == 4.0

    def test_process_streams_all_results(self):
        with ProcessBackend(workers=2) as backend:
            tasks = [(i, SweepTask(_value, (i,))) for i in range(8)]
            outcomes = list(backend.run_tasks(tasks))
        assert sorted(o.index for o in outcomes) == list(range(8))
        assert {o.index: o.value for o in outcomes} == {
            i: i * 3 for i in range(8)}
        assert all(o.worker.startswith("pool/") for o in outcomes)

    def test_process_pool_persists_across_sweeps(self):
        with ProcessBackend(workers=1) as backend:
            list(backend.run_tasks([(0, SweepTask(_value, (1,)))]))
            pool = backend._pool
            list(backend.run_tasks([(0, SweepTask(_value, (2,)))]))
            assert backend._pool is pool

    def test_head_of_line_completion_order(self):
        # Regression: map() yielded in submission order, so the slow
        # first task held back every later completion. The backend must
        # stream the fast tasks before the straggler finishes.
        with ProcessBackend(workers=2, chunksize=1) as backend:
            tasks = [(0, SweepTask(_sleep_value, ((1.0, "slow"),)))]
            tasks += [(i, SweepTask(_sleep_value, ((0.0, f"fast{i}"),)))
                      for i in range(1, 6)]
            order = [outcome.index for outcome in backend.run_tasks(tasks)]
        assert order[-1] == 0, f"straggler should finish last: {order}"
        assert sorted(order) == list(range(6))


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        backend = make_backend("process", workers=2)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 2
        with pytest.raises(BackendError, match="unknown backend"):
            make_backend("carrier-pigeon")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend_name() == "process"
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert default_backend_name() == "serial"
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(BackendError, match="REPRO_BACKEND"):
            default_backend_name()

    def test_remote_needs_addresses(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(RemoteBackendError, match="REPRO_WORKERS"):
            RemoteBackend()


# ---------------------------------------------------------------------- #
# executor integration
# ---------------------------------------------------------------------- #
class TestExecutorBackendIntegration:
    def test_progress_carries_worker_and_duration(self):
        ticks = []
        run_sweep([SweepTask(_value, (i,)) for i in range(3)],
                  parallel=1, cache=False, progress=ticks.append)
        assert [t.done for t in ticks] == [1, 2, 3]
        assert all(t.worker.startswith("serial/") for t in ticks)
        assert all(t.duration >= 0.0 for t in ticks)

    def test_progress_completion_order_with_straggler(self):
        # With the head-of-line fix, the fast tasks' progress ticks
        # arrive before the slow first task's — while the returned
        # list stays in task order.
        ticks = []
        tasks = [SweepTask(_sleep_value, ((0.6, "slow"),))]
        tasks += [SweepTask(_sleep_value, ((0.0, f"f{i}"),))
                  for i in range(1, 5)]
        results = run_sweep(tasks, parallel=2, chunksize=1, cache=False,
                            progress=ticks.append)
        assert results == ["slow", "f1", "f2", "f3", "f4"]
        assert [t.done for t in ticks] == [1, 2, 3, 4, 5]
        assert ticks[-1].index == 0, (
            f"straggler should tick last: {[t.index for t in ticks]}")

    def test_backend_instance_is_borrowed_not_closed(self):
        backend = ProcessBackend(workers=1)
        try:
            out = run_sweep([SweepTask(_value, (2,))], cache=False,
                            backend=backend)
            assert out == [6]
            pool = backend._pool
            assert pool is not None  # still open: caller owns it
            out = run_sweep([SweepTask(_value, (3,))], cache=False,
                            backend=backend)
            assert out == [9]
            assert backend._pool is pool
        finally:
            backend.close()

    def test_warm_cache_never_builds_backend(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")

        class ExplodingBackend(Backend):
            name = "exploding"

            def run_tasks(self, tasks):
                raise AssertionError("backend touched on a warm sweep")

        tasks = [SweepTask(_value, (i,)) for i in range(3)]
        cold = run_sweep(tasks, parallel=1, cache=cache)
        warm = run_sweep(tasks, cache=cache, backend=ExplodingBackend())
        assert warm == cold
        assert cache.stats.hits == 3

    def test_cache_context_not_mutated(self, tmp_path, monkeypatch):
        # Regression: _resolve_cache used to assign cache.context in
        # place, freezing the first call's env modes into a reused
        # store. The store's context must survive untouched...
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        run_sweep([SweepTask(_value, (1,))], parallel=1, cache=cache)
        assert cache.context is None
        # ...and an explicit context must be respected, not replaced.
        pinned = ResultCache(str(tmp_path / "cache2"), fingerprint="fp",
                             context={"pinned": True})
        run_sweep([SweepTask(_value, (1,))], parallel=1, cache=pinned)
        assert pinned.context == {"pinned": True}
        assert resolve_cache_context(pinned) == {"pinned": True}

    def test_context_follows_env_between_sweeps(self, tmp_path,
                                                monkeypatch):
        # The stale-context bug the fix closes: flipping a mode knob
        # between sweeps over one long-lived store must change the keys
        # (miss), not serve the other mode's results (hit).
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.delenv("REPRO_FAST", raising=False)
        cache = ResultCache(str(tmp_path / "cache"), fingerprint="fp")
        tasks = [SweepTask(_value, (i,)) for i in range(2)]
        run_sweep(tasks, parallel=1, cache=cache)
        assert cache.stats.misses == 2
        monkeypatch.setenv("REPRO_FAST", "1")
        assert resolve_cache_context(cache) == env_mode_context()
        run_sweep(tasks, parallel=1, cache=cache)
        assert cache.stats.misses == 4, \
            "REPRO_FAST flip must invalidate, not hit"
        run_sweep(tasks, parallel=1, cache=cache)
        assert cache.stats.hits == 2
