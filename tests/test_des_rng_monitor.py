"""Unit tests for the RNG stream factory and the Monitor instrumentation."""

import numpy as np
import pytest

from repro.des import Counter, Monitor, RandomStreams, TimeSeries


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(42).stream("noise").random(5)
        b = RandomStreams(42).stream("noise").random(5)
        assert np.array_equal(a, b)

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("noise").random(5)
        b = streams.stream("interference").random(5)
        assert not np.array_equal(a, b)

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(7)
        s1.stream("a")
        first = s1.stream("b").random(4)

        s2 = RandomStreams(7)
        second = s2.stream("b").random(4)  # "b" created first here
        assert np.array_equal(first, second)

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_changes_randomness(self):
        base = RandomStreams(42)
        fork = base.fork(1)
        a = base.stream("n").random(4)
        b = fork.stream("n").random(4)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("n").random(4)
        b = RandomStreams(2).stream("n").random(4)
        assert not np.array_equal(a, b)


class TestCounter:
    def test_add_accumulates(self):
        counter = Counter("bytes")
        counter.add(10.0)
        counter.add(5.0)
        assert counter.value == 15.0
        assert counter.events == 2

    def test_default_increment(self):
        counter = Counter("ops")
        counter.add()
        assert counter.value == 1.0


class TestTimeSeries:
    def test_statistics(self):
        series = TimeSeries("t")
        for i, value in enumerate([1.0, 3.0, 2.0]):
            series.record(float(i), value)
        assert series.mean() == pytest.approx(2.0)
        assert series.max() == 3.0
        assert series.min() == 1.0
        assert series.total() == 6.0
        assert len(series) == 3

    def test_empty_statistics_are_zero(self):
        series = TimeSeries("t")
        assert series.mean() == 0.0
        assert series.max() == 0.0
        assert series.std() == 0.0

    def test_arrays(self):
        series = TimeSeries("t")
        series.record(0.5, 7.0)
        assert series.times.tolist() == [0.5]
        assert series.values.tolist() == [7.0]


class TestMonitor:
    def test_counter_registry(self):
        monitor = Monitor()
        monitor.counter("x").add(1)
        assert monitor.counter("x").value == 1.0
        assert "x" in monitor.counters()

    def test_series_registry(self):
        monitor = Monitor()
        monitor.series("y").record(0.0, 1.0)
        assert monitor.has_series("y")
        assert not monitor.has_series("z")

    def test_series_matching_prefix(self):
        monitor = Monitor()
        monitor.series("node.0.write").record(0, 1)
        monitor.series("node.1.write").record(0, 2)
        monitor.series("other").record(0, 3)
        matches = monitor.series_matching("node.")
        assert [name for name, _ in matches] == ["node.0.write",
                                                 "node.1.write"]


class TestUnits:
    def test_fmt_bytes(self):
        from repro.units import MiB, fmt_bytes
        assert fmt_bytes(24 * MiB) == "24.00 MiB"
        assert fmt_bytes(10) == "10 B"
        assert fmt_bytes(-24 * MiB) == "-24.00 MiB"

    def test_fmt_rate(self):
        from repro.units import GB, MB, fmt_rate
        assert fmt_rate(4.32 * GB) == "4.32 GB/s"
        assert fmt_rate(695 * MB) == "695.00 MB/s"

    def test_fmt_time(self):
        from repro.units import fmt_time
        assert fmt_time(0.2) == "200.00 ms"
        assert fmt_time(481.0) == "8m01.0s"
        assert fmt_time(2.5e-5) == "25.00 us"

    def test_parse_size(self):
        from repro.units import parse_size, MiB, MB
        assert parse_size("32MB") == 32 * MB
        assert parse_size("1 MiB") == MiB
        assert parse_size("512") == 512
        assert parse_size("1.5kb") == 1500
