"""Figure 2 — write-phase duration on Kraken (avg/max, plus the 32 MB
stripe misconfiguration)."""

from repro.experiments.figures import fig2_write_phase_kraken


def test_fig2_write_phase_kraken(figure_runner):
    report = figure_runner(fig2_write_phase_kraken)

    by_key = {(row["strategy"], row["cores"]): row for row in report.rows}
    scales = sorted({row["cores"] for row in report.rows})
    largest = scales[-1]

    # Damaris: ~0.2 s, scale-independent, negligible spread.
    for cores in scales:
        damaris = by_key[("damaris", cores)]
        assert damaris["avg_s"] < 1.0
        assert damaris["spread_s"] < 0.2
    # Collective is the slowest and grows with scale; FPP in between.
    coll = by_key[("collective-io", largest)]
    fpp = by_key[("file-per-process", largest)]
    damaris = by_key[("damaris", largest)]
    assert coll["avg_s"] > fpp["avg_s"] > damaris["avg_s"]
    assert coll["avg_s"] > 10 * damaris["avg_s"]
    # Oversized stripes never rescue collective I/O: it stays in the
    # catastrophic regime (far above both FPP and Damaris). NOTE: the
    # paper measured a 2x *degradation* at 32 MB; in this model large
    # stripes instead reduce per-chunk queue fan-out and can come out
    # faster — the real lock-convoy effect lies below the model's
    # granularity. Recorded as NOT REPRODUCED in EXPERIMENTS.md.
    oversized = by_key[("collective-io (32MB stripes)", largest)]
    assert oversized["avg_s"] > 10 * damaris["avg_s"]
    assert oversized["avg_s"] > fpp["avg_s"] * 0.8
