"""Cold-vs-warm benchmark for the content-addressed sweep cache.

Runs the Fig. 2 driver twice against the same (initially empty) cache
directory:

- **cold** — every sweep point is a miss, computed and written back;
- **warm** — every point is a verified hit served from disk.

The warm run must be at least ``MIN_SPEEDUP`` (10×) faster than the
cold run, the two reports must be bit-identical, and the cache stats
must show the warm run recomputed nothing (0 misses). A full run writes
``benchmarks/BENCH_sweep_cache.json`` with the measured times so later
PRs can regress against it::

    PYTHONPATH=src python benchmarks/bench_sweep_cache.py            # full
    PYTHONPATH=src python benchmarks/bench_sweep_cache.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_sweep_cache.py --check    # CI

``--smoke`` uses a trimmed sweep (seconds, not minutes) and does not
touch the committed baseline. ``--check`` runs the full scenario and
compares against the baseline: the speedup floor and report shape must
hold (wall times are recorded but machine-dependent, so only the ratio
is enforced). ``--cache-dir DIR`` keeps the store on disk afterwards —
CI uses that to run ``cachectl verify`` on the produced store.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_sweep_cache.json")

#: The acceptance floor: a fully warm figure must be at least this much
#: faster than its cold run.
MIN_SPEEDUP = 10.0


def run_cold_warm(cache_dir: str, smoke: bool) -> dict:
    os.environ["REPRO_FAST"] = "1"
    os.environ["REPRO_CACHE"] = "1"
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    os.environ.pop("REPRO_TRACE", None)  # tracing would bypass the cache

    from repro.cache import ResultCache
    from repro.experiments import figures

    kwargs = {"scales": (48, 96)} if smoke else {}
    store = ResultCache(cache_dir)
    if store.total_bytes():
        raise SystemExit(f"cache dir {cache_dir!r} is not empty; the cold "
                         f"run must start cold (use cachectl clear)")

    t0 = time.perf_counter()
    cold = figures.fig2_write_phase_kraken(**kwargs)
    cold_s = time.perf_counter() - t0
    cold_stats = store.last_run()

    t0 = time.perf_counter()
    warm = figures.fig2_write_phase_kraken(**kwargs)
    warm_s = time.perf_counter() - t0
    warm_stats = store.last_run()

    if repr(cold.rows) != repr(warm.rows) or repr(cold.notes) != repr(
            warm.notes):
        raise SystemExit("cold and warm reports are not bit-identical")
    if warm_stats["misses"] or warm_stats["bypasses"]:
        raise SystemExit(
            f"warm run recomputed tasks: {warm_stats} (expected pure hits)")
    if warm_stats["hits"] != cold_stats["misses"]:
        raise SystemExit(
            f"warm hits {warm_stats['hits']} != cold misses "
            f"{cold_stats['misses']}: the sweep did not replay")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "rows": len(cold.rows),
        "tasks": cold_stats["misses"],
        "warm_hits": warm_stats["hits"],
        "cache_bytes": store.total_bytes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed sweep; check invariants only, do "
                             "not rewrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="full scenario; compare against the "
                             "committed baseline instead of rewriting it")
    parser.add_argument("--cache-dir", default=None,
                        help="use (and keep) this store instead of a "
                             "throwaway temp dir; must start empty")
    args = parser.parse_args(argv)

    if args.cache_dir:
        cache_dir, cleanup = args.cache_dir, False
        os.makedirs(cache_dir, exist_ok=True)
    else:
        cache_dir, cleanup = tempfile.mkdtemp(prefix="repro-cache-"), True
    try:
        result = run_cold_warm(cache_dir, smoke=args.smoke)
    finally:
        if cleanup:
            shutil.rmtree(cache_dir, ignore_errors=True)

    print(f"sweep_cache: {json.dumps(result)}")
    if result["speedup"] < MIN_SPEEDUP:
        print(f"FAIL: warm speedup {result['speedup']:.1f}x < "
              f"{MIN_SPEEDUP:.0f}x floor")
        return 1

    if args.check:
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)["results"]["sweep_cache"]
        failures = 0
        for key in ("rows", "tasks"):
            if result[key] != baseline[key]:
                print(f"CHECK FAIL sweep_cache.{key}: {result[key]!r} != "
                      f"{baseline[key]!r}")
                failures += 1
        floor = baseline.get("min_speedup", MIN_SPEEDUP)
        if result["speedup"] < floor:
            print(f"CHECK FAIL sweep_cache.speedup: {result['speedup']}x "
                  f"< {floor}x")
            failures += 1
        else:
            print(f"check ok   sweep_cache.speedup: {result['speedup']}x "
                  f"(floor {floor}x, baseline {baseline['speedup']}x)")
        if failures:
            print(f"check FAILED ({failures} deviation(s) from "
                  f"{BASELINE_PATH})")
            return 1
        print("check ok")
    elif not args.smoke:
        payload = {
            "bench": "sweep_cache",
            "command":
                "PYTHONPATH=src python benchmarks/bench_sweep_cache.py",
            "results": {"sweep_cache": dict(result,
                                            min_speedup=MIN_SPEEDUP)},
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
