"""Table I — average aggregate throughput on Grid'5000 (672 cores)."""

from repro.experiments.figures import fast_mode, table1_grid5000


def test_table1_grid5000(figure_runner):
    report = figure_runner(table1_grid5000)

    tput = {row["strategy"]: row["throughput_MB_s"] for row in report.rows}

    # Damaris wins at any scale; the paper's >6x factor needs the full
    # 672-core contention (server concurrency penalties barely bite at
    # REPRO_FAST's reduced scale).
    assert tput["damaris"] > tput["file-per-process"]
    assert tput["damaris"] > tput["collective-io"]
    if not fast_mode():
        # Paper: FPP 695 MB/s, collective 636 MB/s, Damaris 4320 MB/s.
        assert tput["damaris"] > 6 * tput["file-per-process"] * 0.7
        assert tput["damaris"] > 6 * tput["collective-io"] * 0.7
        assert 400 < tput["file-per-process"] < 1100
        assert 400 < tput["collective-io"] < 1100
        assert 3000 < tput["damaris"] < 6000
    # The two standard approaches are comparable (within 2x).
    ratio = tput["file-per-process"] / tput["collective-io"]
    assert 0.5 < ratio < 2.0
