"""Sharded-solver storm benchmark with a machine-readable baseline.

One scenario, ``sharded_storm``: a 100k-flow *weakly coupled* mega
component. Ten groups of forty staggered resources each carry 125
rate-cap ladder levels (adjacent caps 1 % apart — wider than the 0.5 %
``fairness_slack``, so every level is its own freeze round), and thin
chained bridge flows fuse all 400 resources into a single contention
component. The component-partitioned solver must therefore re-solve
the *whole* ladder — every remaining level times every remaining class
— on each of the ~1000 completion batches. ``REPRO_SOLVER=sharded``
min-cut partitions the component into 10 shards along the thin
bridges; each batch then re-solves only the disturbed shard's own
ladder chunk while the untouched shards are served from the per-shard
result cache.

The bench runs the storm under ``solver="sharded"`` and under the best
single-shard configuration (``solver="component"``, compiled kernel)
and asserts:

- per-flow end-time deviation between the two runs is within
  ``fairness_slack`` (the sharded solver's bounded-approximation
  contract);
- total bytes moved match exactly and every flow completes;
- the sharded run is at least 2x faster (full/--check runs only).

Run directly (not via pytest) to (re)produce the JSON baseline::

    PYTHONPATH=src python benchmarks/bench_sharded_storm.py          # full
    PYTHONPATH=src python benchmarks/bench_sharded_storm.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_sharded_storm.py --check  # CI

The full run writes ``benchmarks/BENCH_sharded_storm.json`` with wall
times, scenario invariants and the deterministic shard counters
(sharded ticks, shard solves, cache hits, rejects, fallbacks) so later
PRs regress against both speed and partition behaviour. ``--smoke``
shrinks the storm, skips the speedup floor and does **not** touch the
baseline. ``--check`` runs the full storm and compares against the
committed baseline: counters and invariants must match exactly, wall
times may regress at most ``--tolerance`` (default 0.10, or
``REPRO_BENCH_TOLERANCE``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_sharded_storm.json")

#: Geometric rate-cap ladder: adjacent levels 1 % apart, deliberately
#: wider than the 0.5 % fairness slack so freeze rounds cannot batch
#: across levels — the global solve pays one round per remaining level.
_LADDER = 1.01
_BASE_CAP = 1e5
_SLACK = 0.005


def _run_sharded_storm(solver: str, groups: int, res_per_group: int,
                       classes_per_res: int, mult: int, kernel: str,
                       shards: int):
    """One storm run. Every resource in group ``g`` carries
    ``classes_per_res`` ladder levels (``mult`` identical writers per
    level) from the group's own contiguous ladder chunk; chained bridge
    flows (tiny rate cap) fuse consecutive resources — and hence all
    groups — into one component. The link capacity leaves 20 % headroom
    over the heaviest group, so rates are ladder-determined and the
    partition's bounded approximation is exact here."""
    import hashlib

    import numpy as np

    from repro.des import Simulator
    from repro.des.bandwidth import FlowNetwork

    ncls = classes_per_res
    loads = [mult * _BASE_CAP * _LADDER ** (g * ncls)
             * sum(_LADDER ** w for w in range(ncls))
             for g in range(groups)]
    cap = 1.2 * max(loads)
    sim = Simulator()
    net = FlowNetwork(sim, solver=solver, fairness_slack=_SLACK,
                      kernel=kernel, shards=shards)
    links = [net.add_capacity(f"r{g}.{r}", cap)
             for g in range(groups) for r in range(res_per_group)]
    flows = []
    for g in range(groups):
        for r in range(res_per_group):
            link = links[g * res_per_group + r]
            for w in range(ncls):
                rate_cap = _BASE_CAP * _LADDER ** (g * ncls + w)
                for _m in range(mult):
                    flows.append(net.transfer([link], 9e6,
                                              rate_cap=rate_cap))
    for i in range(len(links) - 1):
        flows.append(net.transfer([links[i], links[i + 1]], 2e6,
                                  rate_cap=2e4))
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    ends = np.array([flow.end_time for flow in flows])
    invariants = {
        "flows": len(flows),
        "completed": net.completed_flows,
        "bytes_moved": net.total_bytes_moved,
        "sim_time": sim.now,
        "ends_digest": hashlib.blake2b(ends.tobytes(),
                                       digest_size=8).hexdigest(),
    }
    return invariants, ends, elapsed, net.solver_stats


def bench_sharded_storm(groups: int = 10, res_per_group: int = 40,
                        classes_per_res: int = 125, mult: int = 2,
                        shards: int = 10,
                        require_speedup: bool = True):
    """Weakly coupled mega component: sharded vs best single-shard.

    The single-shard reference is the component solver on the compiled
    kernel — the fastest configuration that existed before sharding.
    The asserted >= 2x is the tentpole claim of the sharded solver;
    the per-flow deviation bound is its correctness contract."""
    from repro.des.kernels import kernel_status

    kernel = "compiled"
    if kernel_status() == "unavailable":
        # No C compiler and no numba: the deviation contract and the
        # shard counters are still checkable on the python kernel, the
        # speedup floor is not (both sides would just be python-bound).
        assert not require_speedup, (
            "sharded_storm needs the compiled kernel (C compiler or "
            "pip install repro[compiled]) for the full/--check run")
        kernel = "python"

    import numpy as np

    shr, ends_shr, wall_shr, stats = _run_sharded_storm(
        "sharded", groups, res_per_group, classes_per_res, mult,
        kernel, shards)
    single, ends_single, wall_single, _ = _run_sharded_storm(
        "component", groups, res_per_group, classes_per_res, mult,
        kernel, shards)

    assert shr["completed"] == shr["flows"], "sharded storm flows lost"
    assert single["completed"] == single["flows"], "reference flows lost"
    assert shr["bytes_moved"] == single["bytes_moved"], (
        f"bytes diverged: sharded {shr['bytes_moved']} != "
        f"single-shard {single['bytes_moved']}")
    # Bounded-approximation contract: every flow's completion time under
    # the sharded solver stays within fairness_slack of the exact run.
    deviation = float(np.max(np.abs(ends_shr - ends_single)
                             / np.maximum(ends_single, 1e-12)))
    assert deviation <= _SLACK, (
        f"per-flow end-time deviation {deviation:.3g} exceeds "
        f"fairness_slack {_SLACK}")
    assert stats["sharded_ticks"] > 0, (
        "sharded solver never engaged — the storm no longer exercises "
        "the partitioned path")

    speedup = wall_single / wall_shr
    print(f"sharded_storm: sharded {wall_shr:.3f} s vs single-shard "
          f"{wall_single:.3f} s ({speedup:.1f}x), max end-time "
          f"deviation {deviation:.3g}")
    if require_speedup:
        assert speedup >= 2.0, (
            f"sharded solver only {speedup:.2f}x faster than the "
            f"single-shard compiled reference (expected >= 2x on the "
            f"{shr['flows']}-flow weakly coupled storm)")

    result = dict(shr)
    result["wall_s"] = round(wall_shr, 3)
    result["wall_single_s"] = round(wall_single, 3)
    result["max_end_deviation"] = deviation
    # Deterministic partition counters: any change in how ticks are
    # served (shard solves vs cache hits vs rejects) fails --check.
    result["shards"] = stats["shards"]
    result["sharded_ticks"] = stats["sharded_ticks"]
    result["shard_solves"] = stats["shard_solves"]
    result["shard_cache_hits"] = stats["shard_cache_hits"]
    result["shard_rejects"] = stats["shard_rejects"]
    result["shard_fallbacks"] = stats["shard_fallbacks"]
    result["shard_cut_bytes"] = stats["shard_cut_bytes"]
    return result


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def check_against_baseline(results: dict, tolerance: float) -> int:
    """Compare a full run against the committed baseline.

    Invariant fields must match exactly (or near-exactly for float
    accumulators); wall times (any key starting with ``wall``) may
    regress at most ``tolerance`` (relative). On any failure the whole
    per-key comparison is printed as an old/new/delta table. Returns
    the number of failures."""
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)["results"]
    rows = []  # (scenario.key, old, new, delta, status)
    failures = 0
    for name, recorded in baseline.items():
        current = results.get(name)
        if current is None:
            rows.append((name, "<recorded>", "<missing>", "", "FAIL"))
            failures += 1
            continue
        for key, expected in recorded.items():
            got = current.get(key)
            label = f"{name}.{key}"
            if got is None:
                rows.append((label, _fmt_value(expected), "<missing>",
                             "", "FAIL"))
                failures += 1
                continue
            if isinstance(expected, (int, float)) \
                    and isinstance(got, (int, float)) and expected != 0:
                delta = f"{100.0 * (got - expected) / expected:+.1f} %"
            elif got == expected:
                delta = "="
            else:
                delta = "!="
            if key.startswith("wall"):
                ok = got <= expected * (1.0 + tolerance)
                status = "ok" if ok else f"FAIL (>+{100 * tolerance:.0f} %)"
            elif isinstance(expected, float):
                ok = abs(got - expected) <= 1e-6 * max(1.0, abs(expected))
                status = "ok" if ok else "FAIL"
            else:
                ok = got == expected
                status = "ok" if ok else "FAIL"
            if not ok:
                failures += 1
            rows.append((label, _fmt_value(expected), _fmt_value(got),
                         delta, status))
    if failures:
        widths = [max(len(str(row[col])) for row in rows
                      + [("key", "baseline", "current", "delta", "status")])
                  for col in range(5)]
        header = ("key", "baseline", "current", "delta", "status")
        print(f"check: {failures} deviation(s); full comparison:")
        for row in (header,) + tuple(rows):
            print("  " + "  ".join(str(cell).ljust(width)
                                   for cell, width in zip(row, widths)))
    else:
        for label, old, new, delta, _status in rows:
            print(f"check ok   {label}: {new} (baseline {old}, {delta})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken storm; check the deviation "
                             "contract only, do not rewrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="full storm; compare wall times, counters "
                             "and invariants against the committed "
                             "baseline instead of rewriting it")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_TOLERANCE", "0.10")),
                        help="relative wall-time regression allowed by "
                             "--check (default 0.10)")
    args = parser.parse_args(argv)

    if args.smoke:
        results = {
            "sharded_storm": bench_sharded_storm(
                groups=4, res_per_group=8, classes_per_res=16, mult=2,
                shards=4, require_speedup=False),
        }
    else:
        results = {
            "sharded_storm": bench_sharded_storm(),
        }

    for name, result in results.items():
        print(f"{name}: {json.dumps(result)}")

    if args.check:
        failures = check_against_baseline(results, args.tolerance)
        if failures:
            print(f"check FAILED ({failures} deviation(s) from "
                  f"{BASELINE_PATH})")
            return 1
        print("check ok")
    elif not args.smoke:
        payload = {
            "bench": "sharded_storm",
            "command":
                "PYTHONPATH=src python benchmarks/bench_sharded_storm.py",
            "results": results,
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
