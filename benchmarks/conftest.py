"""Shared bench plumbing.

Every bench regenerates one table/figure of the paper via the drivers in
:mod:`repro.experiments.figures`, prints the rendered report (the
rows/series the paper reports), and appends it to
``benchmarks/reports/<figure>.txt`` so EXPERIMENTS.md can reference the
exact output. ``REPRO_FAST=1`` trims sweeps.
"""

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture
def figure_runner(benchmark, capsys):
    """Run a figure driver exactly once under pytest-benchmark, print and
    persist its report."""

    def run(driver, *args, **kwargs):
        result = benchmark.pedantic(driver, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        text = result.render()
        with capsys.disabled():
            print()
            print(text)
        os.makedirs(REPORT_DIR, exist_ok=True)
        slug = "".join(ch if ch.isalnum() else "_"
                       for ch in result.figure.lower()).strip("_")
        with open(os.path.join(REPORT_DIR, f"{slug}.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(text + "\n")
        return result

    return run
