"""Shared bench plumbing.

Every bench regenerates one table/figure of the paper via the drivers in
:mod:`repro.experiments.figures`, prints the rendered report (the
rows/series the paper reports), and appends it to
``benchmarks/reports/<figure>.txt`` so EXPERIMENTS.md can reference the
exact output. ``REPRO_FAST=1`` trims sweeps.

The harness honours the sweep cache: with ``REPRO_CACHE=1`` (location
via ``REPRO_CACHE_DIR``) previously computed sweep points are served
from the content-addressed store — bit-identical to recomputing them —
and each bench prints the hit/miss split of its run. This makes
re-running the whole figure suite after a one-preset edit cost only the
affected points.
"""

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def _cache_stats_line():
    """The last sweep's hit/miss split, when caching is enabled."""
    from repro.cache import cache_enabled, cache_from_env

    if not cache_enabled():
        return None
    cache = cache_from_env()
    last = cache.last_run()
    return (f"[sweep cache] hits={last['hits']} misses={last['misses']} "
            f"bypasses={last['bypasses']} ({cache.root})")


@pytest.fixture
def figure_runner(benchmark, capsys):
    """Run a figure driver exactly once under pytest-benchmark, print and
    persist its report."""

    def run(driver, *args, **kwargs):
        result = benchmark.pedantic(driver, args=args, kwargs=kwargs,
                                    rounds=1, iterations=1)
        text = result.render()
        with capsys.disabled():
            print()
            print(text)
            stats = _cache_stats_line()
            if stats:
                print(stats)
        os.makedirs(REPORT_DIR, exist_ok=True)
        slug = "".join(ch if ch.isalnum() else "_"
                       for ch in result.figure.lower()).strip("_")
        with open(os.path.join(REPORT_DIR, f"{slug}.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(text + "\n")
        return result

    return run
