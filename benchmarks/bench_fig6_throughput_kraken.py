"""Figure 6 — aggregate throughput on Kraken (Damaris ~6x FPP, ~15x
collective at the largest scale)."""

from repro.experiments.figures import fig6_throughput_kraken


def test_fig6_throughput(figure_runner):
    report = figure_runner(fig6_throughput_kraken)

    by_key = {(row["strategy"], row["cores"]): row for row in report.rows}
    scales = sorted({row["cores"] for row in report.rows})
    largest = scales[-1]

    damaris = by_key[("damaris", largest)]["throughput_GB_s"]
    fpp = by_key[("file-per-process", largest)]["throughput_GB_s"]
    coll = by_key[("collective-io", largest)]["throughput_GB_s"]

    # Ordering and rough factors (paper: 6x and 15x at 9216 cores).
    assert damaris > fpp > coll
    assert 3.0 < damaris / fpp < 15.0
    assert 6.0 < damaris / coll < 40.0
