"""Figure 7 — leveraging spare time: compression and transfer scheduling."""

from repro.experiments.figures import fig7_spare_strategies


def test_fig7_spare_strategies(figure_runner):
    report = figure_runner(fig7_spare_strategies)

    def row(platform, variant):
        for entry in report.rows:
            if entry["platform"] == platform \
                    and entry["variant"] == variant:
                return entry
        raise AssertionError(f"missing row {platform}/{variant}")

    for platform in ("kraken", "grid5000"):
        plain = row(platform, "plain")
        scheduled = row(platform, "scheduler")
        # Scheduling reduces the dedicated-core write time (paper: both
        # platforms; 13.1 GB/s vs 9.7 GB/s on 2304 Kraken cores).
        assert scheduled["write_s"] < plain["write_s"] * 1.05

    # Compression is a storage-vs-spare-time *tradeoff*: on at least one
    # platform the gzip CPU cost visibly raises the dedicated write time
    # (the paper observed this on Kraken; in the model the CPU-bound side
    # is Grid'5000's faster file system — same tradeoff, see the report).
    overheads = [row(p, "gzip")["write_s"] / row(p, "plain")["write_s"]
                 for p in ("kraken", "grid5000")]
    assert max(overheads) > 1.2

    kraken_plain = row("kraken", "plain")
    kraken_sched = row("kraken", "scheduler")
    assert kraken_sched["throughput_GB_s"] >= \
        kraken_plain["throughput_GB_s"] * 0.9
