"""Ablations of the design choices DESIGN.md calls out.

- shared-memory allocator: mutex-based vs lock-free partitioned;
- one-copy ``df_write`` vs zero-copy ``dc_alloc/dc_commit`` vs a FUSE-like
  kernel-mediated transfer (Section V-B: "about 10 times slower in
  transferring data than using shared memory");
- Lustre stripe-size sensitivity of the collective baseline;
- number of dedicated cores per node.
"""

import time

import numpy as np

from repro.apps.workload import CM1Workload
from repro.cluster import Machine, MachineSpec, NoNoise
from repro.core import DamarisConfig, DamarisDeployment
from repro.experiments.figures import fast_mode
from repro.experiments.harness import run_experiment
from repro.experiments.platforms import kraken_preset
from repro.experiments.report import FigureReport
from repro.runtime import DamarisRuntime
from repro.storage import Lustre, MetadataSpec, TargetSpec
from repro.strategies import CollectiveIOStrategy, DamarisStrategy
from repro.units import GiB, MiB


# ---------------------------------------------------------------------- #
# shm transfer paths: one-copy / zero-copy / FUSE-like
# ---------------------------------------------------------------------- #
def _transfer_paths_report():
    report = FigureReport(
        figure="Ablation: transfer path",
        title="Client-visible cost of handing one iteration to the "
              "dedicated core (DES, per-client write phase)",
        paper_claims=[
            "At most a single copy is required; zero-copy is available",
            "A FUSE interface is ~10x slower in transferring data than "
            "shared memory (Section V-B)",
        ])
    results = {}
    for label, factor, zero_copy in (("df_write (1 copy)", 1.0, False),
                                     ("dc_alloc (0 copy)", 1.0, True),
                                     ("FUSE-like", 0.1, False)):
        machine = Machine(
            MachineSpec(nodes=1, cores_per_node=12,
                        mem_bandwidth=2 * GiB * factor,
                        nic_bandwidth=1 * GiB),
            seed=2, noise=NoNoise())
        fs = Lustre(machine, ntargets=4,
                    target_spec=TargetSpec(straggler_sigma=0.0),
                    metadata_spec=MetadataSpec(sigma=0.0))
        config = DamarisConfig()
        config.add_layout("grid", "float", (256, 128, 32))  # 4 MiB
        config.add_variable("field", "grid")
        config.add_event("end", "persist")
        config.buffer_size = 512 * MiB
        deployment = DamarisDeployment(machine, fs, config)
        deployment.start()
        durations = []

        def client_program(client):
            start = machine.sim.now
            if zero_copy:
                block = yield machine.sim.process(
                    client.dc_alloc("field", 0))
                yield machine.sim.process(
                    client.dc_commit("field", 0, block))
            else:
                yield machine.sim.process(client.df_write("field", 0))
            yield machine.sim.process(client.df_signal("end", 0))
            durations.append(machine.sim.now - start)
            yield machine.sim.process(client.df_finalize())

        for client in deployment.clients:
            machine.sim.process(client_program(client))
        machine.sim.run()
        mean = float(np.mean(durations))
        results[label] = mean
        report.rows.append({"path": label, "client_cost_s": mean})
    report.add_note(
        f"FUSE-like / one-copy slowdown: "
        f"{results['FUSE-like'] / results['df_write (1 copy)']:.1f}x")
    return report, results


def test_ablation_transfer_paths(figure_runner):
    report = figure_runner(lambda: _transfer_paths_report()[0])
    costs = {row["path"]: row["client_cost_s"] for row in report.rows}
    assert costs["dc_alloc (0 copy)"] < 0.1 * costs["df_write (1 copy)"]
    assert costs["FUSE-like"] > 5 * costs["df_write (1 copy)"]


# ---------------------------------------------------------------------- #
# allocator: mutex vs partitioned (real threads, real contention)
# ---------------------------------------------------------------------- #
def _allocator_report():
    report = FigureReport(
        figure="Ablation: shm allocator",
        title="Mutex-based vs lock-free partitioned reservation "
              "(real threaded runtime, wall-clock)",
        paper_claims=[
            "Damaris offers Boost's mutex-based allocator and a "
            "lock-free partitioned algorithm for equal-size writers",
        ])
    import tempfile
    import threading
    nclients = 8
    iterations = 30 if not fast_mode() else 10
    payload = np.zeros((64, 64, 8), dtype=np.float32)
    for allocator in ("mutex", "partitioned"):
        config = DamarisConfig()
        config.add_layout("grid", "float", payload.shape)
        config.add_variable("field", "grid")
        config.add_event("end", "discard")
        config.buffer_size = 64 * MiB
        config.allocator = allocator
        with tempfile.TemporaryDirectory() as tmp:
            runtime = DamarisRuntime(config, output_dir=tmp, nodes=1,
                                     clients_per_node=nclients)

            def drive(client):
                for iteration in range(iterations):
                    client.df_write("field", iteration, payload)
                    client.df_signal("end", iteration)

            started = time.perf_counter()
            threads = [threading.Thread(target=drive, args=(client,))
                       for client in runtime.clients]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
            runtime.shutdown()
        report.rows.append({
            "allocator": allocator,
            "wall_s": elapsed,
            "writes": nclients * iterations,
        })
    return report


def test_ablation_allocators(figure_runner):
    report = figure_runner(_allocator_report)
    walls = {row["allocator"]: row["wall_s"] for row in report.rows}
    assert set(walls) == {"mutex", "partitioned"}
    # Both complete; neither pathologically slower (>20x) than the other.
    ratio = walls["mutex"] / walls["partitioned"]
    assert 0.05 < ratio < 20.0


# ---------------------------------------------------------------------- #
# stripe-size sensitivity of the collective baseline
# ---------------------------------------------------------------------- #
def test_ablation_stripe_size(figure_runner):
    def run():
        report = FigureReport(
            figure="Ablation: stripe size",
            title="Collective-I/O lock pressure vs shared-file stripe "
                  "size (Kraken model)",
            paper_claims=[
                "Setting the stripe size to 32 MB instead of 1 MB "
                "doubled the collective write time (Section IV-C1)",
            ],
            notes=[
                "NOT REPRODUCED in magnitude: the paper's 2x slowdown "
                "came from Lustre lock-convoy dynamics finer-grained "
                "than this simulator models. The model charges bigger "
                "whole-stripe revocation flushes (direction) but also "
                "captures a mild *benefit* of large stripes (less "
                "per-chunk fan-out synchronisation), which can win at "
                "scale. Recorded as the one known partial reproduction "
                "(see EXPERIMENTS.md).",
            ])
        preset = kraken_preset()
        ncores = 576 if fast_mode() else 2304
        for stripe in (1 * MiB, 4 * MiB, 32 * MiB):
            machine, fs, workload = preset.build(ncores, seed=11)
            strategy = CollectiveIOStrategy(
                mode=preset.collective_mode,
                stripe_count=preset.collective_stripe_count,
                stripe_size=stripe)
            result = run_experiment(machine, fs, workload, strategy,
                                    write_phases=1)
            report.rows.append({
                "stripe_MiB": stripe // MiB,
                "write_phase_s": result.avg_write_phase,
                "lock_revocations": fs.locks.revocations,
                "flushed_MiB_per_conflict": stripe // MiB,
            })
        return report

    report = figure_runner(run)
    rows = sorted(report.rows, key=lambda row: row["stripe_MiB"])
    # Each boundary conflict flushes a whole stripe: the serialised flush
    # volume per conflict grows with the stripe size (the directional
    # part of the paper's observation that the model does capture).
    assert rows[-1]["flushed_MiB_per_conflict"] > \
        rows[0]["flushed_MiB_per_conflict"]
    assert all(row["lock_revocations"] > 0 for row in rows)
    # Whatever the stripe size, collective stays within the same regime —
    # no setting rescues it (phases within 2x of each other).
    phases = [row["write_phase_s"] for row in rows]
    assert max(phases) < 2.0 * min(phases)


# ---------------------------------------------------------------------- #
# number of dedicated cores per node
# ---------------------------------------------------------------------- #
def test_ablation_dedicated_core_count(figure_runner):
    def run():
        report = FigureReport(
            figure="Ablation: dedicated cores per node",
            title="Runtime impact of dedicating 1 vs 2 of 12 cores "
                  "(Kraken model, one output cycle)",
            paper_claims=[
                "One dedicated core per node turned out to be optimal "
                "(Section V-A)",
            ])
        preset = kraken_preset()
        ncores = 576
        for dedicated in (1, 2):
            machine, fs, workload = preset.build(ncores, seed=13)
            strategy = DamarisStrategy(dedicated_cores_per_node=dedicated)
            result = run_experiment(machine, fs, workload, strategy,
                                    write_phases=1)
            report.rows.append({
                "dedicated_per_node": dedicated,
                "compute_ranks": result.compute_ranks,
                "run_time_s": result.run_time,
                "write_phase_s": result.avg_write_phase,
            })
        return report

    report = figure_runner(run)
    rows = sorted(report.rows, key=lambda row: row["dedicated_per_node"])
    assert len(rows) == 2
    for row in rows:
        assert row["write_phase_s"] < 1.0
    # Two dedicated cores leave fewer compute ranks and dilate the
    # compute block further: one dedicated core is the better choice
    # (the paper's "optimal choice").
    assert rows[1]["run_time_s"] > rows[0]["run_time_s"]
