"""Section V-A — the dedicated-core breakeven model, analytically and
validated against the simulator."""

import numpy as np

from repro.analysis.model import breakeven_io_fraction
from repro.apps.workload import CM1Workload
from repro.cluster import Machine, MachineSpec, NoNoise
from repro.experiments.figures import model_breakeven
from repro.experiments.harness import run_experiment
from repro.experiments.report import FigureReport
from repro.storage import Lustre, MetadataSpec, TargetSpec
from repro.strategies import DamarisStrategy, FilePerProcessStrategy
from repro.units import GiB


def test_model_breakeven_table(figure_runner):
    report = figure_runner(model_breakeven)
    by_cores = {row["cores_per_node"]: row for row in report.rows}
    # The paper's example: N = 24 -> p = 4.35 %.
    assert abs(by_cores[24]["breakeven_percent"] - 4.35) < 0.01
    assert by_cores[24]["pays_off_at_5pct"]
    assert not by_cores[12]["pays_off_at_5pct"]
    # Monotone: more cores per node, lower breakeven.
    values = [row["breakeven_percent"] for row in report.rows]
    assert values == sorted(values, reverse=True)


def _simulated_speedup(io_fraction_percent: float,
                       cores_per_node: int = 16) -> float:
    """Run FPP vs Damaris on a small quiet platform whose I/O time is a
    controlled fraction of compute, and return runtime(FPP)/runtime(D)."""

    def build():
        machine = Machine(
            MachineSpec(nodes=4, cores_per_node=cores_per_node,
                        mem_bandwidth=64 * GiB, nic_bandwidth=8 * GiB),
            seed=3, noise=NoNoise(), completion_slack=0.0,
            fairness_slack=0.0)
        fs = Lustre(machine, ntargets=8,
                    target_spec=TargetSpec(
                        peak_bandwidth=100e6, stream_peak=100e6,
                        straggler_sigma=0.0, request_latency=0.0,
                        object_half=1e9, stream_half=1e9, queue_depth=0),
                    metadata_spec=MetadataSpec(sigma=0.0))
        return machine, fs

    # Volume per core such that FPP's write time is the requested
    # fraction of the compute block: total capacity 800 MB/s.
    compute = 100.0
    ranks = 4 * cores_per_node
    volume = 800e6 * compute * (io_fraction_percent / 100.0) / ranks
    workload = CM1Workload(subdomain=(max(int(volume // 24), 1), 1, 1),
                           seconds_per_iteration=compute,
                           iterations_per_output=1)
    machine, fs = build()
    fpp = run_experiment(machine, fs, workload, FilePerProcessStrategy(),
                         write_phases=1)
    machine, fs = build()
    damaris = run_experiment(machine, fs, workload, DamarisStrategy(),
                             write_phases=1)
    return fpp.run_time / damaris.run_time


def test_breakeven_validated_by_simulation(figure_runner):
    """DES validation: dedication pays above the analytic breakeven and
    not far below it (16-core nodes -> p* = 6.67 %)."""

    def run():
        cores = 16
        breakeven = breakeven_io_fraction(cores)
        report = FigureReport(
            figure="Section V-A validation",
            title=f"Simulated FPP/Damaris runtime ratio vs I/O fraction "
                  f"({cores}-core nodes, analytic breakeven "
                  f"{breakeven:.2f} %)",
            paper_claims=[
                "Dedicating one core pays off once the I/O fraction "
                "exceeds p = 100/(N-1)",
            ])
        for io_percent in (1.0, 3.0, breakeven, 12.0, 20.0):
            ratio = _simulated_speedup(io_percent, cores)
            report.rows.append({
                "io_percent": io_percent,
                "runtime_ratio_fpp_over_damaris": ratio,
                "dedication_wins": ratio > 1.0,
            })
        return report

    report = figure_runner(run)
    rows = report.rows
    # Well below breakeven: dedication loses; well above: it wins.
    assert not rows[0]["dedication_wins"]
    assert rows[-1]["dedication_wins"]
    # The ratio is monotone in the I/O fraction.
    ratios = [row["runtime_ratio_fpp_over_damaris"] for row in rows]
    assert ratios == sorted(ratios)
