"""Figure 3 — write-phase duration vs output volume on BluePrint."""

import numpy as np

from repro.experiments.figures import fig3_blueprint_volume


def test_fig3_blueprint_volume(figure_runner):
    report = figure_runner(fig3_blueprint_volume)

    fpp = [row for row in report.rows
           if row["strategy"] == "file-per-process"]
    damaris = [row for row in report.rows if row["strategy"] == "damaris"]
    fpp.sort(key=lambda row: row["volume_GB"])
    damaris.sort(key=lambda row: row["volume_GB"])

    # FPP write time grows with the volume; Damaris stays flat and small.
    assert fpp[-1]["avg_s"] > fpp[0]["avg_s"]
    for row in damaris:
        assert row["avg_s"] < 1.0
    # FPP variability (max - min) grows with the volume.
    spreads = [row["max_s"] - row["min_s"] for row in fpp]
    assert spreads[-1] >= spreads[0]
    # At every volume Damaris beats FPP by a wide margin.
    for fpp_row, damaris_row in zip(fpp, damaris):
        assert damaris_row["avg_s"] < 0.2 * fpp_row["avg_s"]
