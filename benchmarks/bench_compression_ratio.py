"""Section IV-D — real compression ratios on real mini-CM1 fields.

Paper: gzip alone ≈ 187 %; 16-bit precision reduction + gzip ≈ 600 %
(original/compressed × 100 %), measured through the dedicated cores with
no application-visible overhead.
"""

import numpy as np

from repro.apps.cm1 import MiniCM1
from repro.core import DamarisConfig
from repro.experiments.report import FigureReport
from repro.formats.compression import (
    GzipCodec,
    Precision16Codec,
    compress_pipeline,
)
from repro.runtime import DamarisRuntime


def _storm_fields(steps: int = 40):
    """A mature mini-storm (entropy comparable to the paper's data)."""
    model = MiniCM1(48, 48, 32, seed=7)
    model.step(steps)
    return model.variables()


def measure_ratios():
    fields = _storm_fields()
    report = FigureReport(
        figure="Section IV-D",
        title="Real compression ratios on mini-CM1 storm fields "
              "(paper convention: original/compressed x 100 %)",
        paper_claims=[
            "gzip: ~187 % compression ratio",
            "16-bit precision + gzip: ~600 % compression ratio",
        ])
    total_raw = total_gzip = total_gzip16 = 0
    for name, field in fields.items():
        raw = field.nbytes
        gz, _ = compress_pipeline(field, [GzipCodec()])
        gz16, _ = compress_pipeline(field,
                                    [Precision16Codec(), GzipCodec()])
        total_raw += raw
        total_gzip += len(gz)
        total_gzip16 += len(gz16)
        report.rows.append({
            "variable": name,
            "raw_MB": raw / 1e6,
            "gzip_pct": 100.0 * raw / len(gz),
            "gzip16_pct": 100.0 * raw / len(gz16),
        })
    report.rows.append({
        "variable": "TOTAL",
        "raw_MB": total_raw / 1e6,
        "gzip_pct": 100.0 * total_raw / total_gzip,
        "gzip16_pct": 100.0 * total_raw / total_gzip16,
    })
    return report


def test_compression_ratios(figure_runner):
    report = figure_runner(measure_ratios)
    total = report.rows[-1]
    # Paper anchors with generous bands: gzip ~187 %, 16-bit+gzip ~600 %.
    assert 140 <= total["gzip_pct"] <= 300
    assert 400 <= total["gzip16_pct"] <= 1200


def test_compression_hidden_from_application(figure_runner, tmp_path):
    """End-to-end through the real runtime: the dedicated core pays the
    gzip cost, the client-visible write time stays tiny."""

    def run():
        fields = _storm_fields(steps=20)
        config = DamarisConfig()
        sample = next(iter(fields.values()))
        config.add_layout("grid", "float", sample.shape)
        for name in fields:
            config.add_variable(name, "grid")
        config.add_event("end_iteration", "compress")
        config.buffer_size = 256 << 20
        report = FigureReport(
            figure="Section IV-D overlap",
            title="Compression cost placement (real threaded runtime)",
            paper_claims=[
                "The overhead and jitter induced by this compression is "
                "completely hidden within the dedicated cores",
            ])
        with DamarisRuntime(config, output_dir=str(tmp_path),
                            nodes=1, clients_per_node=2) as runtime:
            for iteration in range(3):
                for client in runtime.clients:
                    for name, field in fields.items():
                        client.df_write(name, iteration, field)
                    client.df_signal("end_iteration", iteration)
        report.rows.append({
            "client_write_s": runtime.client_write_seconds(),
            "server_write_s": runtime.server_write_seconds(),
            "ratio_pct": runtime.compression_ratio_percent(),
        })
        return report

    report = figure_runner(run)
    row = report.rows[0]
    assert row["ratio_pct"] > 140
    # The dedicated core does the heavy lifting; clients only memcpy.
    assert row["client_write_s"] < row["server_write_s"]
