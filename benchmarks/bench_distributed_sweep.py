"""Distributed-sweep benchmark: RemoteBackend vs serial, plus crash leg.

Launches two local ``sweepworkerctl serve`` workers (ephemeral ports via
``--port-file``), then runs a **cold** multi-figure sweep (Fig. 2 +
Fig. 6, caching off so every point ships to a worker) twice:

- **serial** — in-process reference run;
- **remote** — the same drivers with ``REPRO_BACKEND=remote`` pointing
  at the two workers.

The two report sets must be bit-identical. On machines with enough
cores to host the coordinator plus two busy workers
(``os.cpu_count() >= 3``) the remote run must be at least
``MIN_SPEEDUP`` (2×) faster than serial; on smaller boxes the ratio is
recorded but the floor is skipped with a warning (two workers
time-slicing one core cannot beat a serial run). A third **crash** leg
SIGKILLs one worker mid-sweep and asserts zero lost and zero
duplicated tasks, with values bit-identical to a serial recompute.
A full run writes ``benchmarks/BENCH_distributed_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py          # full
    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_distributed_sweep.py --check  # CI

``--smoke`` trims the sweeps to seconds and checks the invariants only
(bit-identity, crash recovery); ``--check`` runs the full scenario and
compares shape/ratio keys against the committed baseline (wall times
are machine-dependent and not enforced).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_distributed_sweep.json")

#: Acceptance floor: two local workers must halve the cold sweep —
#: enforced only when the machine can actually run coordinator + two
#: workers concurrently (see ``floor_enforced``).
MIN_SPEEDUP = 2.0

#: Modes the bench controls itself; anything inherited would leak into
#: the workers through their environment instead of the welcome frame.
_MODE_KEYS = ("REPRO_FAST", "REPRO_SOLVER", "REPRO_KERNEL",
              "REPRO_SCHEDULER", "REPRO_SHARDS", "REPRO_SHARD_WORKERS",
              "REPRO_TRACE", "REPRO_CACHE", "REPRO_PARALLEL",
              "REPRO_BACKEND", "REPRO_WORKERS")


def floor_enforced() -> bool:
    return (os.cpu_count() or 1) >= 3


def _worker_env() -> dict:
    env = {key: value for key, value in os.environ.items()
           if key not in _MODE_KEYS}
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (f"{src}{os.pathsep}{existing}"
                         if existing else src)
    return env


def start_worker(run_dir: str, name: str):
    """Launch one worker subprocess; returns ``(proc, "host:port")``."""
    port_file = os.path.join(run_dir, f"{name}.port")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.tools.sweepworkerctl", "serve",
         "--port", "0", "--port-file", port_file,
         "--tag", name, "--max-idle", "600"],
        cwd=REPO_ROOT, env=_worker_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if os.path.exists(port_file):
            with open(port_file, encoding="utf-8") as fh:
                text = fh.read().strip()
            if text:
                return proc, text
        if proc.poll() is not None:
            raise SystemExit(
                f"worker {name} died on startup:\n"
                f"{proc.stdout.read().decode(errors='replace')}")
        time.sleep(0.02)
    proc.kill()
    raise SystemExit(f"worker {name} never published its port")


def _report_bits(report) -> str:
    return repr(report.rows) + "|" + repr(report.notes)


def _result_bits(result):
    """Bit-exact fingerprint of an ExperimentResult (no rounding)."""
    return (
        result.strategy, result.ncores, result.run_time,
        result.drain_time,
        tuple(p.duration for p in result.phases),
        tuple(p.rank_times.tobytes() for p in result.phases),
    )


def run_figures(addrs, smoke: bool) -> dict:
    """The cold multi-figure sweep, serial then remote, bit-compared."""
    from repro.experiments import figures

    kwargs = {"scales": (48, 96)} if smoke else {}
    drivers = (("fig2", figures.fig2_write_phase_kraken),
               ("fig6", figures.fig6_throughput_kraken))

    os.environ["REPRO_BACKEND"] = "serial"
    os.environ.pop("REPRO_WORKERS", None)
    t0 = time.perf_counter()
    serial = [(name, fn(**kwargs)) for name, fn in drivers]
    serial_s = time.perf_counter() - t0

    os.environ["REPRO_BACKEND"] = "remote"
    os.environ["REPRO_WORKERS"] = ",".join(addrs)
    t0 = time.perf_counter()
    remote = [(name, fn(**kwargs)) for name, fn in drivers]
    remote_s = time.perf_counter() - t0
    os.environ.pop("REPRO_BACKEND", None)
    os.environ.pop("REPRO_WORKERS", None)

    for (name, cold), (_, dist) in zip(serial, remote):
        if _report_bits(cold) != _report_bits(dist):
            raise SystemExit(
                f"{name}: remote report is not bit-identical to serial")

    speedup = serial_s / remote_s if remote_s > 0 else float("inf")
    return {
        "figures": [name for name, _ in drivers],
        "rows": sum(len(report.rows) for _, report in serial),
        "serial_s": round(serial_s, 3),
        "remote_s": round(remote_s, 3),
        "speedup": round(speedup, 2),
    }


def run_crash_leg(run_dir: str, smoke: bool) -> dict:
    """SIGKILL one worker mid-sweep; every task must come back exactly
    once, bit-identical to a serial recompute."""
    from repro.experiments.backends import RemoteBackend
    from repro.experiments.executor import SweepTask
    from repro.experiments.specs import run_spec

    ntasks = 6 if smoke else 12
    specs = [
        {"preset": "grid5000", "ncores": 24 if i % 2 else 48,
         "strategy": {"kind": "damaris" if i % 3 else "fpp"},
         "seed": 100 + i, "write_phases": 1}
        for i in range(ntasks)
    ]
    tasks = [(i, SweepTask(run_spec, (spec,)))
             for i, spec in enumerate(specs)]
    reference = [_result_bits(run_spec(spec)) for spec in specs]

    procs, addrs = [], []
    for i in range(2):
        proc, addr = start_worker(run_dir, f"crash{i}")
        procs.append(proc)
        addrs.append(addr)
    try:
        backend = RemoteBackend(addrs, chunk_cap=2)
        outcomes = []
        for outcome in backend.run_tasks(tasks):
            outcomes.append(outcome)
            if len(outcomes) == 1:
                # First completion: a worker certainly holds in-flight
                # tasks — SIGKILL it mid-batch.
                procs[0].send_signal(signal.SIGKILL)
        counters = backend.counters()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
        for proc in procs:
            proc.wait(timeout=10)

    indices = [outcome.index for outcome in outcomes]
    if sorted(indices) != list(range(ntasks)):
        raise SystemExit(
            f"crash leg lost or duplicated tasks: got indices "
            f"{sorted(indices)}, wanted 0..{ntasks - 1}")
    by_index = {outcome.index: outcome.value for outcome in outcomes}
    survived = [_result_bits(by_index[i]) for i in range(ntasks)]
    if survived != reference:
        raise SystemExit(
            "crash leg results are not bit-identical to serial recompute")
    if counters["crashed"] < 1:
        raise SystemExit(
            f"crash leg never observed the worker loss: {counters}")
    return {
        "crash_tasks": ntasks,
        "crash_requeued": int(counters["requeued"]),
        "crash_crashed": int(counters["crashed"]),
    }


def run_bench(smoke: bool) -> dict:
    for key in _MODE_KEYS:
        os.environ.pop(key, None)
    os.environ["REPRO_FAST"] = "1"
    os.environ["REPRO_CACHE"] = "0"  # cold: every point ships out

    with tempfile.TemporaryDirectory(prefix="repro-distbench-") as run_dir:
        procs, addrs = [], []
        for i in range(2):
            proc, addr = start_worker(run_dir, f"w{i}")
            procs.append(proc)
            addrs.append(addr)
        try:
            result = run_figures(addrs, smoke=smoke)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
        result.update(run_crash_leg(run_dir, smoke=smoke))

    result["cpus"] = os.cpu_count() or 1
    result["workers"] = 2
    result["floor_enforced"] = floor_enforced()
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="trimmed sweep; check invariants only, do "
                             "not rewrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="full scenario; compare against the "
                             "committed baseline instead of rewriting it")
    args = parser.parse_args(argv)

    result = run_bench(smoke=args.smoke)

    print(f"distributed_sweep: {json.dumps(result)}")
    if result["floor_enforced"]:
        if result["speedup"] < MIN_SPEEDUP:
            print(f"FAIL: remote speedup {result['speedup']:.2f}x < "
                  f"{MIN_SPEEDUP:.0f}x floor with {result['workers']} "
                  f"workers on {result['cpus']} cpus")
            return 1
    else:
        print(f"WARN: only {result['cpus']} cpu(s) — coordinator and "
              f"workers time-slice one core, so the {MIN_SPEEDUP:.0f}x "
              f"floor is recorded but not enforced "
              f"(measured {result['speedup']:.2f}x)")

    if args.check:
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            baseline = json.load(fh)["results"]["distributed_sweep"]
        failures = 0
        for key in ("figures", "rows", "crash_tasks", "workers"):
            if result[key] != baseline[key]:
                print(f"CHECK FAIL distributed_sweep.{key}: "
                      f"{result[key]!r} != {baseline[key]!r}")
                failures += 1
        floor = baseline.get("min_speedup", MIN_SPEEDUP)
        if result["floor_enforced"] and result["speedup"] < floor:
            print(f"CHECK FAIL distributed_sweep.speedup: "
                  f"{result['speedup']}x < {floor}x")
            failures += 1
        else:
            print(f"check ok   distributed_sweep.speedup: "
                  f"{result['speedup']}x (floor {floor}x, "
                  f"enforced={result['floor_enforced']}, "
                  f"baseline {baseline['speedup']}x)")
        if failures:
            print(f"check FAILED ({failures} deviation(s) from "
                  f"{BASELINE_PATH})")
            return 1
        print("check ok")
    elif not args.smoke:
        payload = {
            "bench": "distributed_sweep",
            "command": "PYTHONPATH=src python "
                       "benchmarks/bench_distributed_sweep.py",
            "results": {"distributed_sweep":
                        dict(result, min_speedup=MIN_SPEEDUP)},
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
