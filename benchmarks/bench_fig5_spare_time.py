"""Figure 5 — dedicated-core write time vs spare time."""

from repro.experiments.figures import fig5_spare_time


def test_fig5_spare_time(figure_runner):
    report = figure_runner(fig5_spare_time)

    kraken = sorted((row for row in report.rows
                     if row["platform"] == "kraken"),
                    key=lambda row: row["cores"])
    blueprint = sorted((row for row in report.rows
                        if row["platform"] == "blueprint"),
                       key=lambda row: row["volume_GB"])

    # Kraken: write time grows with scale (file-system contention)...
    assert kraken[-1]["write_s"] > kraken[0]["write_s"]
    # ... yet the dedicated cores stay 75-99 % idle (the paper's range;
    # we allow a little slack at the largest scale).
    for row in kraken:
        assert row["spare_fraction"] > 0.70

    # BluePrint: write time grows with the output volume.
    assert blueprint[-1]["write_s"] > blueprint[0]["write_s"]
    for row in blueprint:
        assert row["spare_fraction"] > 0.70
