"""Figure 4 — scalability factor and run time on Kraken.

Note the crossover: at small scale file-per-process can beat Damaris
(the 1/12 compute dilation costs more than the short write phase); the
paper's claims hold at large scale, where I/O dominates.
"""

from repro.experiments.figures import fig4_scalability_kraken

#: Scale at which the paper's cross-strategy claims clearly apply.
CROSSOVER_CORES = 2304


def test_fig4_scalability(figure_runner):
    report = figure_runner(fig4_scalability_kraken)

    by_key = {(row["strategy"], row["cores"]): row for row in report.rows}
    scales = sorted({row["cores"] for row in report.rows})
    largest = scales[-1]

    damaris = by_key[("damaris", largest)]
    fpp = by_key[("file-per-process", largest)]
    coll = by_key[("collective-io", largest)]

    # Damaris scales nearly perfectly (>= 85 % of ideal) at every scale.
    for cores in scales:
        assert by_key[("damaris", cores)]["scalability"] > 0.85 * cores
    # Collective is always the worst performer.
    assert coll["scalability"] < fpp["scalability"]
    assert coll["run_time_s"] > fpp["run_time_s"]

    if largest >= CROSSOVER_CORES:
        # Beyond the crossover: Damaris wins outright.
        assert fpp["scalability"] < damaris["scalability"]
        # Run-time claims: cut vs FPP (paper ~35 %), divided vs
        # collective (paper ~3.5x) — right direction, rough magnitude.
        cut = 1.0 - damaris["run_time_s"] / fpp["run_time_s"]
        ratio = coll["run_time_s"] / damaris["run_time_s"]
        assert 0.10 < cut < 0.70
        assert ratio > 2.0
