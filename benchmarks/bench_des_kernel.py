"""DES kernel microbenchmarks with a machine-readable baseline.

Five scenarios exercise the simulator's hot paths:

- ``flow_storm``: a 4096-flow barrier-synchronised write storm (12
  writers per NIC, 336 storage targets with slightly staggered
  capacities) — dominated by ``FlowNetwork._maxmin_rates``;
- ``component_storm``: a weak-scaling storm of 256 *resource-disjoint*
  nodes (private NIC + private staggered target, several sequential
  write rounds per writer) run under both ``REPRO_SOLVER`` modes — the
  scenario the component-partitioned solver exists for: one node's
  completion must re-solve one node, not 256. The bench asserts the two
  solvers produce bit-identical invariants and that the component
  solver is at least 2x faster;
- ``mega_storm``: a 100k-flow barrier storm whose contention graph is
  *fused into one component* by a shared (non-binding) fabric link, so
  each of the 192 staggered completion batches re-solves every
  remaining flow — the water-filling solve itself dominates. Runs the
  pure-python kernel once and the compiled kernel under both event
  schedulers; asserts all three produce bit-identical results and that
  the compiled kernel is at least 5x faster end-to-end;
- ``heap_churn``: 2000 staggered short flows through one shared link —
  dominated by event-queue traffic and completion-tick scheduling;
- ``fig2_sweep``: the full Fig. 2 driver in ``REPRO_FAST`` mode —
  the end-to-end pipeline a paper figure actually pays for.

Run directly (not via pytest) to (re)produce the JSON baseline::

    PYTHONPATH=src python benchmarks/bench_des_kernel.py            # full
    PYTHONPATH=src python benchmarks/bench_des_kernel.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_des_kernel.py --check    # CI

The full run writes ``benchmarks/BENCH_des_kernel.json`` with wall
times and scenario invariants (completed flows, bytes moved, final
simulated clock) so later PRs can regress against both speed and
results. ``--smoke`` shrinks every scenario and does **not** overwrite
the committed baseline; it only checks the invariants still hold.
``--check`` runs the full scenarios and *compares* against the
committed baseline instead of rewriting it: scenario invariants must
match and wall times must stay within ``--tolerance`` (default 0.10,
or ``REPRO_BENCH_TOLERANCE``) of the recorded values — this is the
guard that tracing hooks stay free when tracing is disabled.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

BASELINE_PATH = os.path.join(os.path.dirname(__file__),
                             "BENCH_des_kernel.json")


def bench_flow_storm(nflows: int = 4096):
    """Barrier storm: every writer starts at t=0, 12 per NIC, striped
    over 336 staggered-capacity targets."""
    from repro.des import Simulator
    from repro.des.bandwidth import FlowNetwork

    sim = Simulator()
    net = FlowNetwork(sim)
    nnodes = (nflows + 11) // 12
    nics = [net.add_capacity(f"nic{i}", 1.6e9) for i in range(nnodes)]
    tgts = [net.add_capacity(f"ost{j}", 45e6 * (1 + 1e-3 * j))
            for j in range(336)]
    t0 = time.perf_counter()
    for i in range(nflows):
        net.transfer([nics[i // 12], tgts[(i // 12) % 336]], 9e6)
    sim.run()
    elapsed = time.perf_counter() - t0
    return {
        "wall_s": round(elapsed, 3),
        "flows": nflows,
        "completed": net.completed_flows,
        "bytes_moved": net.total_bytes_moved,
        "sim_time": sim.now,
    }


def _run_component_storm(solver: str, nodes: int, writers: int,
                         rounds: int):
    """One component-storm run: every node owns a private NIC and a
    private (staggered-capacity) target, each writer issues ``rounds``
    sequential transfers, so the contention graph is ``nodes`` disjoint
    components with per-node phase changes at distinct times."""
    from repro.des import Simulator
    from repro.des.bandwidth import FlowNetwork

    sim = Simulator()
    net = FlowNetwork(sim, solver=solver)
    t0 = time.perf_counter()
    for i in range(nodes):
        nic = net.add_capacity(f"nic{i}", 1.6e9)
        tgt = net.add_capacity(f"ost{i}", 45e6 * (1 + 1e-3 * i))

        def writer(nic=nic, tgt=tgt, left=rounds):
            flow = net.transfer([nic, tgt], 9e6)

            def next_round(_evt, nic=nic, tgt=tgt, left=left - 1):
                if left > 0:
                    writer(nic, tgt, left)
            flow.event.callbacks.append(next_round)

        for _w in range(writers):
            writer()
    sim.run()
    elapsed = time.perf_counter() - t0
    invariants = {
        "flows": nodes * writers * rounds,
        "completed": net.completed_flows,
        "bytes_moved": net.total_bytes_moved,
        "sim_time": sim.now,
    }
    return invariants, elapsed, net.solver_stats


def bench_component_storm(nodes: int = 256, writers: int = 12,
                          rounds: int = 4, require_speedup: bool = True):
    """Weak-scaling storm over resource-disjoint nodes, both solvers.

    The component solver must reproduce the forced-global results
    bit-identically (``fairness_slack`` is 0 here) while re-solving only
    the one node a completion touched; the asserted speedup is the
    tentpole claim of the incremental solver."""
    comp, wall_comp, stats = _run_component_storm(
        "component", nodes, writers, rounds)
    glob, wall_glob, _ = _run_component_storm(
        "global", nodes, writers, rounds)
    assert comp == glob, (
        f"solver divergence: component {comp} != global {glob}")
    assert comp["completed"] == comp["flows"], "component storm flows lost"
    speedup = wall_glob / wall_comp
    print(f"component_storm: component {wall_comp:.3f} s vs global "
          f"{wall_glob:.3f} s ({speedup:.1f}x)")
    if require_speedup:
        assert speedup >= 2.0, (
            f"component solver only {speedup:.2f}x faster than global "
            f"(expected >= 2x on {nodes} disjoint components)")
    result = dict(comp)
    result["wall_s"] = round(wall_comp, 3)
    result["wall_global_s"] = round(wall_glob, 3)
    # Deterministic solver counters: any change in how recomputations
    # are served (full vs component vs fast path) fails --check loudly.
    result["component_solves"] = stats["component_solves"]
    result["full_solves"] = stats["full_solves"]
    result["fast_grants"] = stats["fast_grants"]
    result["flows_solved"] = stats["flows_solved"]
    return result


def _run_mega_storm(kernel: str, scheduler: str, nnodes: int,
                    ntargets: int, writers: int):
    """One mega-storm run: per-node NICs, staggered shared targets, and
    a huge shared fabric link that never binds but fuses the whole
    network into one contention component — so every completion batch
    dirties (and re-solves) all remaining flows. 192 distinct target
    capacities give 192 freeze rounds per solve and 192 completion
    batches: O(rounds x flows) python work per solve, which is exactly
    the regime the compiled kernel exists for."""
    import hashlib

    import numpy as np

    from repro.des import Simulator
    from repro.des.bandwidth import FlowNetwork

    sim = Simulator(scheduler=scheduler)
    net = FlowNetwork(sim, kernel=kernel)
    nics = [net.add_capacity(f"nic{i}", 1.6e9) for i in range(nnodes)]
    tgts = [net.add_capacity(f"ost{j}", 45e6 * (1 + 1e-3 * j))
            for j in range(ntargets)]
    fabric = net.add_capacity("fabric", 1e18)
    flows = []
    for i in range(nnodes):
        res = (nics[i], tgts[i % ntargets], fabric)
        for _w in range(writers):
            flows.append(net.transfer(res, 9e6))
    # Time the simulation run only: flow submission is identical python
    # bookkeeping in every mode and would just dilute the comparison.
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    ends = np.array([flow.end_time for flow in flows])
    invariants = {
        "flows": len(flows),
        "completed": net.completed_flows,
        "bytes_moved": net.total_bytes_moved,
        "sim_time": sim.now,
        "ends_digest": hashlib.blake2b(ends.tobytes(),
                                       digest_size=8).hexdigest(),
    }
    return invariants, elapsed, net.solver_stats, sim.scheduler_stats


def bench_mega_storm(nnodes: int = 8334, ntargets: int = 192,
                     writers: int = 12, require_speedup: bool = True):
    """100k-flow fused storm: compiled kernel vs python, both schedulers.

    The compiled runs must reproduce the python results bit-identically
    (``fairness_slack`` is 0 here) under the calendar *and* the heap
    scheduler; the asserted >= 5x is the tentpole claim of the compiled
    water-filling kernel."""
    from repro.des.kernels import kernel_status

    if kernel_status() == "unavailable":
        # No C compiler and no numba: cover what can be covered (the
        # scheduler bit-identity) and skip the kernel comparison rather
        # than failing environments the fallback path exists for.
        assert not require_speedup, (
            "mega_storm needs the compiled kernel (C compiler or "
            "pip install repro[compiled]) for the full/--check run")
        py, wall_py, _, _ = _run_mega_storm(
            "python", "calendar", nnodes, ntargets, writers)
        heap, wall_heap, _, _ = _run_mega_storm(
            "python", "heap", nnodes, ntargets, writers)
        assert py == heap, (
            f"scheduler divergence: calendar {py} != heap {heap}")
        print(f"mega_storm: python {wall_py:.3f} s "
              f"(compiled kernel unavailable, comparison skipped)")
        result = dict(py)
        result["wall_python_s"] = round(wall_py, 3)
        return result

    py, wall_py, _, _ = _run_mega_storm(
        "python", "calendar", nnodes, ntargets, writers)
    comp, wall_comp, stats, sched = _run_mega_storm(
        "compiled", "calendar", nnodes, ntargets, writers)
    heap, wall_heap, _, _ = _run_mega_storm(
        "compiled", "heap", nnodes, ntargets, writers)
    assert comp == py, (
        f"kernel divergence: compiled {comp} != python {py}")
    assert heap == py, (
        f"scheduler divergence: heap {heap} != calendar {py}")
    assert py["completed"] == py["flows"], "mega storm flows lost"
    speedup = wall_py / wall_comp
    print(f"mega_storm: compiled {wall_comp:.3f} s vs python "
          f"{wall_py:.3f} s ({speedup:.1f}x); compiled/heap "
          f"{wall_heap:.3f} s")
    if require_speedup:
        assert speedup >= 5.0, (
            f"compiled kernel only {speedup:.2f}x faster than python "
            f"(expected >= 5x on the fused {py['flows']}-flow storm)")
    result = dict(py)
    result["wall_s"] = round(wall_comp, 3)
    result["wall_python_s"] = round(wall_py, 3)
    result["wall_heap_sched_s"] = round(wall_heap, 3)
    # Deterministic counters: solves must all hit the compiled kernel,
    # and the calendar queue's window behaviour is event-sequence-exact.
    result["full_solves"] = stats["full_solves"]
    result["kernel_solves"] = stats["kernel_solves"]
    result["sched_resizes"] = sched["resizes"]
    result["sched_migrations"] = sched["migrations"]
    return result


def bench_heap_churn(nflows: int = 2000):
    """Staggered arrivals through one shared link: stresses the event
    heap and the reschedulable completion tick (each arrival used to
    leak one stale tick event into the heap)."""
    from repro.des import Simulator
    from repro.des.bandwidth import FlowNetwork

    sim = Simulator()
    net = FlowNetwork(sim)
    link = net.add_capacity("link", 1e9)
    peak = [0]
    started = [0]

    def arrive():
        started[0] += 1
        net.transfer([link], 5e5)
        if started[0] < nflows:
            # Chain the next arrival so the heap holds only live events:
            # any growth beyond a handful is completion-tick leakage.
            sim.schedule_callback(1e-4, arrive)
        peak[0] = max(peak[0], sim.queue_depth)

    t0 = time.perf_counter()
    sim.schedule_callback(0.0, arrive)
    sim.run()
    elapsed = time.perf_counter() - t0
    return {
        "wall_s": round(elapsed, 3),
        "flows": nflows,
        "completed": net.completed_flows,
        "bytes_moved": net.total_bytes_moved,
        "sim_time": sim.now,
        "peak_heap": peak[0],
    }


def bench_fig2_sweep():
    """The Fig. 2 driver end-to-end in fast mode (trimmed scales)."""
    os.environ["REPRO_FAST"] = "1"
    from repro.experiments import figures

    t0 = time.perf_counter()
    report = figures.fig2_write_phase_kraken()
    elapsed = time.perf_counter() - t0
    return {
        "wall_s": round(elapsed, 3),
        "rows": len(report.rows),
        "scales": list(figures.kraken_scales()),
    }


def _fmt_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def check_against_baseline(results: dict, tolerance: float) -> int:
    """Compare a full run against the committed baseline.

    Invariant fields must match exactly (or near-exactly for float
    accumulators); wall times (any key starting with ``wall``) may
    regress at most ``tolerance`` (relative). On any failure the whole
    per-key comparison is printed as an old/new/delta table — a CI
    regression must be diagnosable from the log alone, not just from
    its first offending key. Returns the number of failures."""
    with open(BASELINE_PATH, encoding="utf-8") as fh:
        baseline = json.load(fh)["results"]
    rows = []  # (scenario.key, old, new, delta, status)
    failures = 0
    for name, recorded in baseline.items():
        current = results.get(name)
        if current is None:
            rows.append((name, "<recorded>", "<missing>", "", "FAIL"))
            failures += 1
            continue
        for key, expected in recorded.items():
            got = current.get(key)
            label = f"{name}.{key}"
            if got is None:
                rows.append((label, _fmt_value(expected), "<missing>",
                             "", "FAIL"))
                failures += 1
                continue
            if isinstance(expected, (int, float)) \
                    and isinstance(got, (int, float)) and expected != 0:
                delta = f"{100.0 * (got - expected) / expected:+.1f} %"
            elif got == expected:
                delta = "="
            else:
                delta = "!="
            if key.startswith("wall"):
                ok = got <= expected * (1.0 + tolerance)
                status = "ok" if ok else f"FAIL (>+{100 * tolerance:.0f} %)"
            elif isinstance(expected, float):
                ok = abs(got - expected) <= 1e-6 * max(1.0, abs(expected))
                status = "ok" if ok else "FAIL"
            else:
                ok = got == expected
                status = "ok" if ok else "FAIL"
            if not ok:
                failures += 1
            rows.append((label, _fmt_value(expected), _fmt_value(got),
                         delta, status))
    if failures:
        widths = [max(len(str(row[col])) for row in rows
                      + [("key", "baseline", "current", "delta", "status")])
                  for col in range(5)]
        header = ("key", "baseline", "current", "delta", "status")
        print(f"check: {failures} deviation(s); full comparison:")
        for row in (header,) + tuple(rows):
            print("  " + "  ".join(str(cell).ljust(width)
                                   for cell, width in zip(row, widths)))
    else:
        for label, old, new, delta, _status in rows:
            print(f"check ok   {label}: {new} (baseline {old}, {delta})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shrunken scenarios; check invariants only, "
                             "do not rewrite the baseline")
    parser.add_argument("--check", action="store_true",
                        help="full scenarios; compare wall times and "
                             "invariants against the committed baseline "
                             "instead of rewriting it")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get(
                            "REPRO_BENCH_TOLERANCE", "0.10")),
                        help="relative wall-time regression allowed by "
                             "--check (default 0.10)")
    args = parser.parse_args(argv)

    if args.smoke:
        results = {
            "flow_storm": bench_flow_storm(nflows=512),
            "component_storm": bench_component_storm(
                nodes=32, writers=4, rounds=2, require_speedup=False),
            "mega_storm": bench_mega_storm(
                nnodes=128, ntargets=16, writers=4, require_speedup=False),
            "heap_churn": bench_heap_churn(nflows=200),
        }
    else:
        results = {
            "flow_storm": bench_flow_storm(),
            "component_storm": bench_component_storm(),
            "mega_storm": bench_mega_storm(),
            "heap_churn": bench_heap_churn(),
            "fig2_sweep": bench_fig2_sweep(),
        }

    for name, result in results.items():
        print(f"{name}: {json.dumps(result)}")

    # Invariants: every flow completes, the residual heap is tiny (the
    # reschedulable tick must not leak one event per recompute).
    storm = results["flow_storm"]
    assert storm["completed"] == storm["flows"], "storm flows lost"
    churn = results["heap_churn"]
    assert churn["completed"] == churn["flows"], "churn flows lost"
    assert churn["peak_heap"] <= 32, (
        f"completion-tick leak: peak heap size {churn['peak_heap']} "
        f"during chained arrivals (expected a handful of live events)")

    if args.check:
        failures = check_against_baseline(results, args.tolerance)
        if failures:
            print(f"check FAILED ({failures} deviation(s) from "
                  f"{BASELINE_PATH})")
            return 1
        print("check ok")
    elif not args.smoke:
        payload = {
            "bench": "des_kernel",
            "command": "PYTHONPATH=src python benchmarks/bench_des_kernel.py",
            "results": results,
        }
        with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
    else:
        print("smoke ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
